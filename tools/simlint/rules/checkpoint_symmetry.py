"""checkpoint-symmetry: serialize and restore must walk the same
ordered stream.

The checkpoint-coverage rule checks *membership* — every member named
in serialize appears in restore — but a swapped pair of push_backs, a
tag written but never checked, or a loop consuming one word fewer all
pass a set check and corrupt every checkpoint silently.  This rule
compares the *ordered operation streams* the CFG builder extracts:

  serialize:  every `out.push_back(expr)` in a `*::serialize` body
              becomes (loop_depth, field) where field is the
              normalized last identifier of expr (casts and
              .size()/.raw() accessors dropped);
  restore:    every indexed stream read — `words[i++]`, `words[0]`,
              or a call to a reader lambda over the stream — becomes
              (loop_depth, field), named by its assignment target or
              by the `==`/`!=` partner it is checked against.

The two sequences must pair positionally: same length, same loop
depth at each step, and, when both sides name a field, the same
field.  Unnamed operations are wildcards — the rule prefers silence
to guessing.

Only word-stream pairs are checked: the serialize body must push onto
one of its own (reference) parameters, which is the tagged+size-
checked stream shape membackend established.  Structured checkpoint
objects (e.g. MachineCheckpoint, which copies into member vectors)
are out of scope.

Waiver: `// simlint: ckpt-sym-ok(<why>)` on either function's
definition line or on the mismatching operation's line.
"""

NAME = "checkpoint-symmetry"
WAIVER = "ckpt-sym-ok"


def _leaf(qual):
    return qual.rsplit("::", 1)[-1]


def _cls_of(qual):
    return qual.rsplit("::", 1)[0] if "::" in qual else None


def _pairs(ctx):
    """(class, (fi_s, fn_s), (fi_r, fn_r)) for every class defining
    both serialize and restore (possibly in different files)."""
    sers, rsts = {}, {}
    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        for fn in fi.funcs:
            leaf = _leaf(fn["qual"])
            cls = _cls_of(fn["qual"])
            if cls is None:
                continue
            if leaf == "serialize":
                sers.setdefault(cls, (fi, fn))
            elif leaf == "restore":
                rsts.setdefault(cls, (fi, fn))
    for cls in sorted(set(sers) & set(rsts)):
        yield cls, sers[cls], rsts[cls]


def _member_names(ctx, cls):
    for fi in ctx.files:
        for c in fi.classes:
            if c["name"] == cls:
                return {m[0] for m in c["members"]}
    return set()


def _waived(fi, fn, line):
    return (fi.waived(line, WAIVER)
            or fi.waived(fn["line"], WAIVER))


def run(ctx):
    from . import Finding

    findings = []
    for cls, (fi_s, fn_s), (fi_r, fn_r) in _pairs(ctx):
        cfg_s = fn_s.get("cfg") or {}
        cfg_r = fn_r.get("cfg") or {}
        em = cfg_s.get("em") or []
        cn = cfg_r.get("cn") or []
        params = set(cfg_s.get("params") or [])
        if not em:
            continue
        # Word-stream shape: all emits target a serialize parameter.
        if any(e[2] not in params for e in em):
            continue
        members = _member_names(ctx, cls)

        if len(em) != len(cn):
            line = fn_r["line"]
            if not _waived(fi_r, fn_r, line) \
                    and not _waived(fi_s, fn_s, fn_s["line"]):
                findings.append(Finding(
                    NAME, fi_r.path, line,
                    "%s: serialize emits %d stream operations but "
                    "restore consumes %d — the streams cannot be "
                    "symmetric (waive with "
                    "`// simlint: ckpt-sym-ok(<why>)`)"
                    % (cls, len(em), len(cn))))
            continue

        for i, (e, c) in enumerate(zip(em, cn)):
            e_line, e_depth, _e_stream, e_name = e
            c_line, c_depth, _c_stream, c_name, c_resolved = c
            if not c_resolved and c_name is not None:
                # A bare local resolves if it shadows/names a member
                # (`next(tick)` reading straight into the field);
                # otherwise it is a wildcard.
                if c_name not in members:
                    c_name = None
            if e_depth != c_depth:
                if not (_waived(fi_s, fn_s, e_line)
                        or _waived(fi_r, fn_r, c_line)):
                    findings.append(Finding(
                        NAME, fi_r.path, c_line,
                        "%s: stream op %d is emitted at loop depth "
                        "%d ('%s', %s:%d) but consumed at depth %d — "
                        "serialize/restore disagree on repetition"
                        % (cls, i + 1, e_depth, e_name or "?",
                           fi_s.rel, e_line, c_depth)))
                break
            if e_name is not None and c_name is not None \
                    and e_name != c_name:
                if not (_waived(fi_s, fn_s, e_line)
                        or _waived(fi_r, fn_r, c_line)):
                    findings.append(Finding(
                        NAME, fi_r.path, c_line,
                        "%s: stream op %d writes '%s' (%s:%d) but "
                        "restore consumes '%s' here — fields are "
                        "reordered or mistagged"
                        % (cls, i + 1, e_name, fi_s.rel, e_line,
                           c_name)))
                break
    return findings
