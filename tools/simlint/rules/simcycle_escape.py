"""simcycle-escape: .raw() escapes must not re-enter cycle math.

The raw-cycle rule catches raw-integer *declarations* of stamp-named
variables, but `U64 t = now.raw(); ... t + latency ...` launders a
cycle stamp through an innocently named local and lands right back in
the wraparound/saturation bugs SimCycle/CycleDelta exist to prevent.
This rule runs a may-taint analysis over the CFG:

  gen   `x = <expr containing stamp.raw()>` taints x (stamp = `now`,
        `cycle`, `due`, `deadline` or a `_cycle/_due/_deadline/
        _until/_stamp` suffix — same vocabulary as raw-cycle);
        `y = x` propagates; reassignment from untainted sources
        kills.
  sink  a tainted local in `+ - += -=`, or in an ordering comparison
        (`< > <= >=`) against a stamp-named value, another tainted
        local, or a direct `.raw()` call.  `==`/`!=` are exempt
        (identity checks of serialized stamps are the legitimate use
        of .raw()), as are `* / %` (stats bucketing and cadence
        math).

One level of interprocedural propagation: an argument that passes
`stamp.raw()` *unwrapped* into a repo function taints the matching
parameter of that function (re-wrapping through SimCycle(...)/
CycleDelta(...) at the call site does not taint — the value is back
in the strong domain).

lib/simtime.h is exempt (it is the implementation of the strong
types).  Waiver: `// simlint: raw-escape-ok(<why>)` on the sink line;
the argument is mandatory.
"""

from .. import cfg as cfg_mod
from .. import dataflow

NAME = "simcycle-escape"
WAIVER = "raw-escape-ok"

EXEMPT_PATH_SUFFIXES = ("lib/simtime.h",)

_SINK_OPS = {"+", "-", "+=", "-="}
_CMP_OPS = {"<", ">", "<=", ">="}


def _leaf(qual):
    return qual.rsplit("::", 1)[-1]


def _transfer(facts, events):
    for ev in events:
        if ev[0] != "as":
            continue
        _k, _line, lhs, rhs_ids, raw_src = ev
        if raw_src is not None and cfg_mod.is_stamp_name(raw_src):
            facts.add(lhs)
        elif any(r in facts for r in rhs_ids):
            facts.add(lhs)
        else:
            facts.discard(lhs)
    return facts


def _param_taint(ctx):
    """Bare callee name -> set of tainted parameter indices, from
    `ca` events (args carrying an unwrapped stamp .raw())."""
    out = {}
    for fi in ctx.files:
        for fn in fi.funcs:
            cfg = fn.get("cfg")
            if not cfg:
                continue
            for blk in cfg["blocks"]:
                for ev in blk["e"]:
                    if ev[0] != "ca":
                        continue
                    _k, _line, callee, argidx, src = ev
                    if cfg_mod.is_stamp_name(src):
                        out.setdefault(callee, set()).add(argidx)
    return out


def _tainted_op(name, facts):
    return name in facts


def run(ctx):
    from . import Finding

    findings = []
    taint_in = _param_taint(ctx)

    for fi in ctx.files:
        if "src/" not in fi.rel:
            continue
        if fi.rel.endswith(EXEMPT_PATH_SUFFIXES):
            continue
        for fn in fi.funcs:
            cfgs = [(fn["qual"], fn.get("cfg"))]
            cfgs += list((fn.get("subcfgs") or {}).items())
            for qual, cfg in cfgs:
                if not cfg:
                    continue
                entry = set()
                leaf = _leaf(qual)
                if leaf in taint_in:
                    params = cfg.get("params") or []
                    for idx in taint_in[leaf]:
                        if idx < len(params):
                            entry.add(params[idx])
                inp = dataflow.solve(cfg["blocks"], entry, _transfer,
                                     meet="may")
                _walk(fi, qual, cfg, inp, findings)
    return findings


def _walk(fi, qual, cfg, inp, findings):
    from . import Finding

    reported = set()
    for bi, blk in enumerate(cfg["blocks"]):
        cur = set(inp[bi] or ())
        for ev in blk["e"]:
            if ev[0] == "bo":
                _k, line, a, op, b = ev
                a_t = _tainted_op(a, cur)
                b_t = _tainted_op(b, cur)
                hit = None
                if op in _SINK_OPS and (a_t or b_t):
                    hit = a if a_t else b
                elif op in _CMP_OPS and (a_t or b_t):
                    other = b if a_t else a
                    if (a_t and b_t) or other.endswith(".raw") \
                            or cfg_mod.is_stamp_name(other):
                        hit = a if a_t else b
                if hit is not None and (line, hit) not in reported:
                    reported.add((line, hit))
                    if fi.waived(line, WAIVER):
                        if not fi.waiver_arg(line, WAIVER):
                            findings.append(Finding(
                                NAME, fi.path, line,
                                "raw-escape-ok waiver on '%s' gives "
                                "no reason — write "
                                "raw-escape-ok(<why>)" % hit))
                        continue
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "'%s' carries a SimCycle laundered through "
                        ".raw() and re-enters cycle arithmetic "
                        "('%s') in %s — keep it in "
                        "SimCycle/CycleDelta, or waive with "
                        "`// simlint: raw-escape-ok(<why>)`"
                        % (hit, op, qual)))
            _transfer(cur, [ev])
