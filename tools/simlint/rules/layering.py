"""layering: enforce the module DAG declared in tools/simlint/layers.toml.

Every quoted #include from a file under src/<A>/ to a header under
src/<B>/ is an architecture edge. The edge is legal when B is the
same module, a strictly lower layer, or a declared same-layer edge in
layers.toml. Anything else — an upward include, or an undeclared
same-layer include — is a finding.

Modules listed under [sublayers] additionally order their own files:
an intra-module include may stay in its group or point down the
group order, never up. File stems missing from the sublayer order
are exempt, so only deliberately stratified modules pay the tax.

The fix for a violation is structural, not a waiver: move the shared
declaration down into src/lib/, forward-declare, or invert the
dependency behind an interface owned by the lower module (see
decode/bbcache.h's CodeSource or core/coreapi.h's CoreAuditor for
worked examples in this tree). `// simlint: layering-ok` exists for
the rare intentional edge but should stay unused.
"""

NAME = "layering"
WAIVER = "layering-ok"


def _module_of_rel(rel, known):
    """Module of a repo-relative path: the component after a 'src'
    segment, when it names a declared module. Works for the real tree
    (src/core/...) and for fixture trees (.../bad/src/core/...)."""
    parts = rel.split("/")
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] in known:
            return parts[i + 1]
    return None


def _module_of_include(inc, known):
    parts = inc.replace("\\", "/").split("/")
    if len(parts) >= 2 and parts[0] in known:
        return parts[0]
    return None


def _stem(path):
    """File stem used by the sublayer order: basename, extension
    stripped, so cache.h / cache.cc both rank as 'cache'."""
    base = path.replace("\\", "/").rsplit("/", 1)[-1]
    return base.rsplit(".", 1)[0]


def run(ctx):
    from . import Finding

    layers = ctx.layers
    if layers is None:
        return []
    rank, allow = layers["rank"], layers["allow"]
    findings = []
    for fi in ctx.files:
        src_mod = _module_of_rel(fi.rel, rank)
        if src_mod is None:
            continue
        sub = layers.get("sublayers", {}).get(src_mod)
        for line, inc in fi.includes:
            dst_mod = _module_of_include(inc, rank)
            if dst_mod is None:
                continue
            if dst_mod == src_mod:
                # Intra-module edge: legal unless the module declares
                # a sublayer order and this include climbs it.
                if sub is None:
                    continue
                src_stem, dst_stem = _stem(fi.rel), _stem(inc)
                if src_stem not in sub or dst_stem not in sub:
                    continue
                if sub[dst_stem] <= sub[src_stem]:
                    continue
                if fi.waived(line, WAIVER):
                    continue
                findings.append(Finding(
                    NAME, fi.path, line,
                    "include \"%s\": intra-module edge %s -> %s goes "
                    "UP the %s sublayer order (group %d vs group %d) "
                    "— depend on the narrow interface below instead "
                    "of the aggregate above"
                    % (inc, src_stem, dst_stem, src_mod,
                       sub[src_stem] + 1, sub[dst_stem] + 1)))
                continue
            if rank[dst_mod] < rank[src_mod]:
                continue
            if (rank[dst_mod] == rank[src_mod]
                    and (src_mod, dst_mod) in allow):
                continue
            if fi.waived(line, WAIVER):
                continue
            if rank[dst_mod] > rank[src_mod]:
                how = ("goes UP the layer order (%s is layer %d, %s "
                       "is layer %d)" % (src_mod, rank[src_mod] + 1,
                                         dst_mod, rank[dst_mod] + 1))
            else:
                how = ("is an undeclared same-layer edge (add it to "
                       "layers.toml [layers] allow if intended)")
            findings.append(Finding(
                NAME, fi.path, line,
                "include \"%s\": edge %s -> %s %s — move the shared "
                "declaration down (src/lib/), forward-declare, or "
                "invert the dependency behind an interface"
                % (inc, src_mod, dst_mod, how)))
    return findings
