"""stats-coverage: every stats counter is registered and survives
snapshot + reset — the statistics mirror of checkpoint-coverage.

PTLsim's results tables are only trustworthy if every counter a
module declares is actually wired into the PTLstats tree. Registered
counters (obtained via StatsTree::counter) are snapshotted and reset
by the tree itself, so the failure mode this rule hunts is the
*unwired* counter: a `Counter &` / `Counter *` member that no
constructor initializer, no attachStats-style assignment, ever binds
to the tree. Such a member reads zero forever (or dangles) and the
per-module stats block silently under-reports.

Two clauses:

  (a) registration — every member whose declared type is `Counter`
      must be bound in some method of its class: an initializer-list
      entry or assignment whose right-hand side reaches
      `.counter(...)`, or a single-reference forwarding entry
      (`c(c_)` from a constructor parameter).

  (b) snapshot/reset pairing — a class that owns raw numeric
      accumulators and declares BOTH a snapshot-style method
      (takeSnapshot/snapshot) and reset() must touch every
      Counter/U64-family member in both bodies, exactly as
      checkpoint-coverage pairs serialize/restore.

Waiver: `// simlint: stats-ok` on the member's declaration line
(e.g. a Counter handle deliberately owned elsewhere).
"""

NAME = "stats-coverage"
WAIVER = "stats-ok"

_SNAP_METHODS = ("takeSnapshot", "snapshot")
_NUMERIC_TYPES = {"Counter", "U64", "uint64_t", "U32", "uint32_t",
                  "S64", "int64_t"}


def run(ctx):
    from . import Finding

    # Cross-file tables: bodies by qualified name, binds by class.
    bodies = {}
    binds_by_class = {}
    for fi in ctx.files:
        for qual, ids in fi.bodies.items():
            bodies.setdefault(qual, set()).update(ids)
        for qual, names in fi.binds.items():
            cls = qual.split("::", 1)[0]
            binds_by_class.setdefault(cls, set()).update(names)

    findings = []
    for fi in ctx.files:
        for cls in fi.classes:
            cname = cls["name"]
            bound = binds_by_class.get(cname, set())

            # (a) every Counter-typed member must be bound somewhere.
            for name, line, mtype, _guard in cls["members"]:
                if mtype != "Counter":
                    continue
                if fi.waived(line, WAIVER):
                    continue
                if name in bound:
                    continue
                findings.append(Finding(
                    NAME, fi.path, line,
                    "counter '%s::%s' is never bound to a StatsTree "
                    "(no init-list entry or assignment reaching "
                    ".counter(...)) — it will never appear in "
                    "snapshots; wire it or mark the declaration "
                    "`// simlint: stats-ok`" % (cname, name)))

            # (b) snapshot/reset pairing for raw accumulators.
            snap = next((m for m in _SNAP_METHODS
                         if m in cls["methods"]), None)
            if snap is None or "reset" not in cls["methods"]:
                continue
            snap_ids = bodies.get(cname + "::" + snap)
            reset_ids = bodies.get(cname + "::reset")
            if snap_ids is None or reset_ids is None:
                continue  # declared, defined outside the analysis set
            for name, line, mtype, _guard in cls["members"]:
                if mtype not in _NUMERIC_TYPES:
                    continue
                if fi.waived(line, WAIVER):
                    continue
                missing = []
                if name not in snap_ids:
                    missing.append(snap)
                if name not in reset_ids:
                    missing.append("reset")
                if missing:
                    findings.append(Finding(
                        NAME, fi.path, line,
                        "accumulator '%s::%s' is not touched by %s "
                        "(snapshot and reset must both cover every "
                        "numeric member, or mark it "
                        "`// simlint: stats-ok`)"
                        % (cname, name, " or ".join(missing))))
    return findings
