"""event-discipline: EventQueue callbacks stay non-reentrant and
never leak a fired handle.

EventQueue::runDue is documented "Not reentrant": a callback that
calls back into run()/step()/runDue() re-enters the dispatch loop
mid-dispatch and corrupts the pending heap. And a callback that
re-arms itself with a bare `schedule(...)` — discarding the returned
EventHandle — leaves the object holding the OLD handle, which has
already fired: a later cancel() on it is a no-op (or, worse, cancels
a recycled id). Both bugs only bite under rare interleavings, which
is exactly why they are lint rules and not test cases.

Checked inside every lambda passed to schedule()/sendAt():

  1. no calls to run / step / runDue / runUntil (method or free);
  2. every schedule()/sendAt() call keeps its returned handle
     (assignment, `auto h = ...`, or `return ...`). Re-arming through
     a named helper (armSnapshot(), armReplayer()) is the sanctioned
     pattern and is naturally fine — the helper stores the handle.

Waiver: `// simlint: event-ok` on the offending line.
"""

NAME = "event-discipline"
WAIVER = "event-ok"

_REENTRANT = frozenset({"run", "step", "runDue", "runUntil"})


def run(ctx):
    from . import Finding

    findings = []
    for fi in ctx.files:
        for cb in fi.callbacks:
            for line, name, _prefixed in cb["calls"]:
                if name not in _REENTRANT:
                    continue
                if fi.waived(line, WAIVER):
                    continue
                findings.append(Finding(
                    NAME, fi.path, line,
                    "event callback calls %s() — EventQueue dispatch "
                    "is not reentrant; set state and let the outer "
                    "loop advance, or defer via a scheduled event"
                    % name))
            for line, kept in cb["rearms"]:
                if kept:
                    continue
                if fi.waived(line, WAIVER):
                    continue
                findings.append(Finding(
                    NAME, fi.path, line,
                    "event callback re-arms with schedule()/sendAt() "
                    "but discards the returned EventHandle — the "
                    "handle it holds has already fired; store the "
                    "new handle (or re-arm through a helper that "
                    "does)"))
    return findings
