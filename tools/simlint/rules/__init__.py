"""simlint rules (pass 2 of the two-pass analyzer). Each module exposes:

  NAME     the rule's reporting name (kebab-case)
  WAIVER   the waiver token accepted in `// simlint: <waiver>` comments
  run(ctx) -> [Finding]

ctx is an AnalysisContext over the semantic index built in pass 1:

  files      list of index.FileIndex covering the whole analysis set
             (rules that match declarations to out-of-line
             definitions need cross-file visibility)
  repo_root  absolute repository root (fixture runs pass the fixture
             directory instead, so fixture `src/<mod>/` trees resolve
             the same way the real tree does)
  layers     parsed layers.toml (see layers.load) or None when the
             config is absent — layering then reports nothing

Rules never touch raw tokens; everything they need is in the index,
which is what makes the per-file cache sound.
"""

from collections import namedtuple

Finding = namedtuple("Finding", ["rule", "path", "line", "message"])

AnalysisContext = namedtuple(
    "AnalysisContext", ["files", "repo_root", "layers"])

from . import (  # noqa: E402
    address_kind,
    checkpoint_coverage,
    checkpoint_symmetry,
    cross_domain_access,
    enum_exhaustiveness,
    event_discipline,
    layering,
    lock_discipline,
    nondet_taint,
    nondeterminism,
    raw_cycle,
    shared_state,
    simcycle_escape,
    stats_coverage,
)

ALL = [
    layering,
    checkpoint_coverage,
    checkpoint_symmetry,
    stats_coverage,
    enum_exhaustiveness,
    event_discipline,
    raw_cycle,
    simcycle_escape,
    address_kind,
    nondeterminism,
    shared_state,
    lock_discipline,
    nondet_taint,
    cross_domain_access,
]
BY_NAME = {r.NAME: r for r in ALL}
