"""simlint rules. Each module exposes:

  NAME     the rule's reporting name (kebab-case)
  WAIVER   the waiver token accepted in `// simlint: <waiver>` comments
  run(files) -> [Finding]   files: list of lexer.LexedFile covering
                            the whole analysis set (rules that match
                            declarations to out-of-line definitions
                            need cross-file visibility)
"""

from collections import namedtuple

Finding = namedtuple("Finding", ["rule", "path", "line", "message"])

from . import checkpoint_coverage, nondeterminism, raw_cycle  # noqa: E402

ALL = [checkpoint_coverage, raw_cycle, nondeterminism]
BY_NAME = {r.NAME: r for r in ALL}
