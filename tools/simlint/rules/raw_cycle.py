"""raw-cycle: cycle stamps must use the strong types in lib/simtime.h.

Flags, outside lib/simtime.h:

  1. raw-integer declarations of cycle-stamp-named variables:
     `U64 now`, `uint64_t ready_cycle = ...`, `U64 fetch_stall_until;`
     — these must be SimCycle (absolute stamps) or CycleDelta
     (durations);
  2. the untyped never-sentinel `~0ULL` (or `~0UL` / `~U64(0)`) in a
     statement that also names a cycle-stamp identifier — that is the
     wraparound bug (`~0ULL + latency` == small cycle number) the
     saturating CYCLE_NEVER exists to kill.

Stamp-ish names: `now`, `cycle`, `due`, `deadline`, and anything
ending in `_cycle`, `_due`, `_deadline`, `_until`, or `_stamp`.
Plural `*_cycles` names are NOT flagged: those are counts (durations
serialized as raw integers is fine via .raw()).

Waiver: `// simlint: raw-cycle-ok` on the offending line.
"""

import re

NAME = "raw-cycle"
WAIVER = "raw-cycle-ok"

EXEMPT_PATH_SUFFIXES = ("lib/simtime.h",)

_STAMP_RE = re.compile(
    r"^(now|cycle|due|deadline)$"
    r"|(_cycle|_due|_deadline|_until|_stamp)$")

_INT_TYPES = {"U64", "uint64_t", "U32", "uint32_t", "S64", "int64_t",
              "size_t", "int", "long", "unsigned"}

_NEVER_LITERALS = {"~0ULL", "~0UL", "~0ull", "~0ul"}


def _is_stamp_name(name):
    return bool(_STAMP_RE.search(name))


def run(files):
    from . import Finding

    findings = []
    for lf in files:
        if any(lf.path.endswith(s) for s in EXEMPT_PATH_SUFFIXES):
            continue
        toks = lf.tokens
        for i, t in enumerate(toks):
            # 1. integer-typed declaration of a stamp-named entity:
            #    <int-type> <stamp-name> followed by one of ; = , ) { [
            if (t.kind == "id" and t.value in _INT_TYPES
                    and i + 1 < len(toks)
                    and toks[i + 1].kind == "id"
                    and _is_stamp_name(toks[i + 1].value)
                    and (i + 2 >= len(toks)
                         or toks[i + 2].value in (";", "=", ",", ")",
                                                  "{", "[", ":"))):
                line = toks[i + 1].line
                if not lf.waived(line, WAIVER):
                    findings.append(Finding(
                        NAME, lf.path, line,
                        "raw %s declaration of cycle stamp '%s' — use "
                        "SimCycle/CycleDelta from lib/simtime.h"
                        % (t.value, toks[i + 1].value)))

            # 2. untyped never-sentinel next to a stamp name. Look at
            #    the statement around a '~' '0ULL' pair.
            if t.value == "~" and i + 1 < len(toks) \
                    and toks[i + 1].kind == "num" \
                    and toks[i + 1].value.lower() in ("0ull", "0ul"):
                # Scan the enclosing statement for a stamp identifier.
                lo = i
                while lo > 0 and toks[lo].value not in (";", "{", "}"):
                    lo -= 1
                hi = i
                while hi < len(toks) - 1 and toks[hi].value not in (";",
                                                                    "{"):
                    hi += 1
                stamp = next((x.value for x in toks[lo:hi]
                              if x.kind == "id"
                              and _is_stamp_name(x.value)), None)
                line = t.line
                if stamp and not lf.waived(line, WAIVER):
                    findings.append(Finding(
                        NAME, lf.path, line,
                        "untyped never-sentinel ~0ULL used with cycle "
                        "stamp '%s' — use CYCLE_NEVER (saturating, "
                        "cannot wrap)" % stamp))
    return findings
