"""raw-cycle: cycle stamps must use the strong types in lib/simtime.h.

Flags, outside lib/simtime.h:

  1. raw-integer declarations of cycle-stamp-named variables:
     `U64 now`, `uint64_t ready_cycle = ...`, `U64 fetch_stall_until;`
     — these must be SimCycle (absolute stamps) or CycleDelta
     (durations);
  2. the untyped never-sentinel `~0ULL` (or `~0UL`) in a statement
     that also names a cycle-stamp identifier — that is the
     wraparound bug (`~0ULL + latency` == small cycle number) the
     saturating CYCLE_NEVER exists to kill.

Stamp-ish names: `now`, `cycle`, `due`, `deadline`, and anything
ending in `_cycle`, `_due`, `_deadline`, `_until`, or `_stamp`.
Plural `*_cycles` names are NOT flagged: those are counts (durations
serialized as raw integers is fine via .raw()).

Two false-positive classes are excluded structurally by the index:
template parameter lists (`template <U64 stall_until = 0>` declares a
compile-time constant, not a stamp variable — int_decls carries an
in-template flag) and string literals (raw strings lex as single
opaque tokens, so their contents never reach the scanner).

Waiver: `// simlint: raw-cycle-ok` on the offending line.
"""

NAME = "raw-cycle"
WAIVER = "raw-cycle-ok"

EXEMPT_PATH_SUFFIXES = ("lib/simtime.h",)


def run(ctx):
    from . import Finding

    findings = []
    for fi in ctx.files:
        if fi.rel.endswith(EXEMPT_PATH_SUFFIXES):
            continue
        for line, itype, name, in_template in fi.int_decls:
            if in_template:
                continue
            if fi.waived(line, WAIVER):
                continue
            findings.append(Finding(
                NAME, fi.path, line,
                "raw %s declaration of cycle stamp '%s' — use "
                "SimCycle/CycleDelta from lib/simtime.h"
                % (itype, name)))
        for line, stamp in fi.never_stmts:
            if stamp is None:
                continue
            if fi.waived(line, WAIVER):
                continue
            findings.append(Finding(
                NAME, fi.path, line,
                "untyped never-sentinel ~0ULL used with cycle "
                "stamp '%s' — use CYCLE_NEVER (saturating, "
                "cannot wrap)" % stamp))
    return findings
