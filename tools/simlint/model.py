"""Backend-independent structural model over lexed token streams.

Extracts the two structures the rules need:

  - classes(): class/struct definitions with their data members and
    the names of methods they declare;
  - method_bodies(): the identifier set of every function body, keyed
    by qualified name ("Class::method" for out-of-line definitions,
    the same form synthesized for inline ones).

Both walk the token stream with a brace/paren depth cursor; there is
no type checking and no template instantiation. That is enough for
the checkpoint-coverage rule because PTLsim serialization code
mentions members by name.
"""

import re
from collections import namedtuple

ClassDef = namedtuple("ClassDef", ["name", "line", "members", "methods"])
# type: the leading type identifier of the declaration ("Counter" for
# `Counter &st_hits;` and `Counter *c = nullptr;`, "std" for
# `std::deque<Counter> q;`) — enough for rules that key on a concrete
# class name without doing real type resolution.
# guard: the lock named by a PTL_GUARDED_BY(mu) annotation on the
# declaration, or None — the input to the lock-discipline rule.
Member = namedtuple("Member", ["name", "line", "type", "guard"])

_TYPE_QUALIFIERS = {"const", "mutable", "volatile", "unsigned", "signed"}

_KEYWORD_STMT = {
    "public", "private", "protected", "using", "typedef", "friend",
    "template", "enum", "struct", "class", "union", "static",
    "constexpr", "static_assert", "operator",
}


# Thread-safety annotation macros (src/lib/threadsafety.h). They
# decorate declarations — `std::deque<Counter> storage
# PTL_GUARDED_BY(mu);` — and would otherwise be read as the declared
# name by the last-identifier heuristics below, so declaration
# analyzers strip them (with their argument list) first.
_ANNOTATION_RE = re.compile(r"^PTL_[A-Z_]+$")


def strip_annotations(stmt):
    """Remove PTL_* annotation macros (and their parenthesized
    arguments) from a declaration statement."""
    out, i, n = [], 0, len(stmt)
    while i < n:
        t = stmt[i]
        if t.kind == "id" and _ANNOTATION_RE.match(t.value):
            i += 1
            if i < n and stmt[i].value == "(":
                depth = 0
                while i < n:
                    if stmt[i].value == "(":
                        depth += 1
                    elif stmt[i].value == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
            continue
        out.append(t)
        i += 1
    return out


def _match_brace(tokens, i):
    """tokens[i] is '{'; return index one past its matching '}'."""
    depth = 0
    while i < len(tokens):
        v = tokens[i].value
        if v == "{":
            depth += 1
        elif v == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(tokens)


def _split_statements(tokens):
    """Split a class-body token list into top-level statements.

    A statement ends at a top-level ';' or at a top-level '{...}'
    block (function definition / nested aggregate); the block tokens
    are attached to the statement.
    """
    stmts, cur, depth = [], [], 0
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.value == "{":
            j = _match_brace(tokens, i)
            cur.extend(tokens[i:j])
            i = j
            # int x{0}; continues to ';'. Function bodies just end.
            if i < len(tokens) and tokens[i].value == ";":
                cur.append(tokens[i])
                i += 1
            stmts.append(cur)
            cur = []
            continue
        cur.append(t)
        if t.value in "([":
            depth += 1
        elif t.value in ")]":
            depth -= 1
        elif t.value == ";" and depth == 0:
            stmts.append(cur)
            cur = []
        i += 1
    if cur:
        stmts.append(cur)
    return stmts


def _stmt_is_function(stmt):
    """True when the statement declares or defines a function."""
    # Heuristic: an identifier directly followed by '(' at angle
    # depth 0, before any '=' (so `std::function<void(int)> cb;` and
    # `int x = f();` stay members).
    angle = 0
    for i, t in enumerate(stmt):
        v = t.value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif v == "=" and angle == 0:
            return False
        elif v == "(" and angle == 0:
            return i > 0 and stmt[i - 1].kind == "id"
    return False


def guard_arg(stmt):
    """The lock named by a PTL_GUARDED_BY(...) annotation in the
    statement (last identifier of its argument), or None."""
    for i, t in enumerate(stmt):
        if t.kind == "id" and t.value == "PTL_GUARDED_BY":
            if i + 1 < len(stmt) and stmt[i + 1].value == "(":
                depth, j, last = 0, i + 1, None
                while j < len(stmt):
                    v = stmt[j].value
                    if v == "(":
                        depth += 1
                    elif v == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif stmt[j].kind == "id":
                        last = stmt[j].value
                    j += 1
                return last
    return None


def _member_name(stmt):
    """The declared name of a member statement, or None."""
    guard = guard_arg(stmt)
    stmt = strip_annotations(stmt)
    if not stmt or stmt[0].value in _KEYWORD_STMT:
        # `static` / `using` / access labels and friends are not
        # serializable data members.
        if not (stmt and stmt[0].value in ("struct", "class")):
            return None
        # `struct Foo { ... } name;` declares a member after the body.
    if any(t.value == "operator" for t in stmt):
        return None
    if _stmt_is_function(stmt):
        return None
    # Name = last identifier before the first of ';' '=' '{' '['.
    # Type = first identifier that is not a cv/sign qualifier.
    name, mtype = None, None
    for t in stmt:
        if t.value in (";", "=", "{", "["):
            break
        if t.kind == "id":
            if mtype is None and t.value not in _TYPE_QUALIFIERS:
                mtype = t.value
            name = t
    if name is None or name.value in _KEYWORD_STMT:
        return None
    return Member(name.value, name.line, mtype, guard)


def _method_names(stmt):
    """Names of functions declared by a class-body statement."""
    angle = 0
    for i, t in enumerate(stmt):
        v = t.value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif v == "=" and angle == 0:
            return []
        elif v == "(" and angle == 0:
            if i > 0 and stmt[i - 1].kind == "id":
                return [stmt[i - 1].value]
            return []
    return []


def classes(lexed):
    """All class/struct definitions in a lexed file."""
    out = []
    toks = lexed.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ("struct", "class"):
            # struct Name [final] [: bases] {
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                name = toks[j].value
                line = toks[j].line
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    body = toks[k + 1 : end - 1]
                    members, methods = [], []
                    for stmt in _split_statements(body):
                        methods.extend(_method_names(stmt))
                        m = _member_name(stmt)
                        if m:
                            members.append(m)
                    out.append(ClassDef(name, line, members, methods))
                    i = end
                    continue
        i += 1
    return out


# Identifiers that look like `name(...)` but never open a function
# definition (keywords and cast-like forms the free-function scan
# must skip).
_NOT_FUNC_IDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "new", "delete", "do", "else", "case", "default", "goto",
    "throw", "alignof", "decltype", "noexcept", "static_assert",
    "assert", "defined", "alignas",
}


def _param_names(ptoks):
    """Declared parameter names from a parameter-list token span
    (the tokens between the definition's '(' and ')')."""
    segs, seg, depth = [], [], 0
    for t in ptoks:
        v = t.value
        if v in ("(", "<", "[", "{"):
            depth += 1
        elif v in (")", ">", "]", "}"):
            depth -= 1
        if v == "," and depth == 0:
            segs.append(seg)
            seg = []
        else:
            seg.append(t)
    if seg:
        segs.append(seg)
    names = []
    for seg in segs:
        cut, d = [], 0
        for t in seg:
            v = t.value
            if v in ("(", "<", "[", "{"):
                d += 1
            elif v in (")", ">", "]", "}"):
                d -= 1
            if v == "=" and d == 0:
                break
            cut.append(t)
        last = None
        for t in cut:
            if t.kind == "id":
                last = t.value
        # A lone token is an unnamed parameter's type, not a name.
        if last and last not in _TYPE_QUALIFIERS and len(cut) > 1:
            names.append(last)
    return names


def function_units_ex(lexed):
    """Yield (qual, tokens, def_line, params) for every function
    definition.

    Three shapes are recognized:

      - out-of-line methods (`void Class::method(...) : init... { }`):
        the unit is the tokens from just past the parameter list's ')'
        through the body's closing '}' — that span includes the
        constructor initializer list, which rules use to see member
        bindings;
      - inline methods inside a class body: the whole member statement;
      - free functions at namespace scope (`static U64 helper(...) { }`):
        same span convention as out-of-line methods, qualified by the
        bare function name. These feed the call graph — a `src/sys/`
        entry point that reaches rand() through an anonymous-namespace
        helper is only visible if the helper is a node.

    Spans claimed by an earlier shape are skipped by later scans, so a
    call `Foo::bar(x)` inside a method body never fabricates a unit.
    """
    toks = lexed.tokens
    claimed = []  # token-index spans [lo, hi) already attributed

    # Out-of-line: id '::' id ... '(' ... ')' [init-list] '{' body '}'
    i = 0
    while i + 2 < len(toks):
        if (toks[i].kind == "id" and toks[i + 1].value == "::"
                and toks[i + 2].kind == "id"):
            qual = toks[i].value + "::" + toks[i + 2].value
            line = toks[i].line
            j = i + 3
            if j < len(toks) and toks[j].value == "(":
                # Skip to matching ')', then look for '{' before ';'.
                depth = 0
                while j < len(toks):
                    if toks[j].value == "(":
                        depth += 1
                    elif toks[j].value == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    yield (qual, toks[j + 1 : end], line,
                           _param_names(toks[i + 4 : j]))
                    claimed.append((i, end))
                    i = end
                    continue
        i += 1

    # Inline: per class, any method statement carrying a '{' body.
    # The whole class span is claimed (member declarations are not
    # free functions).
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ("struct", "class"):
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                cname = toks[j].value
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    body = toks[k + 1 : end - 1]
                    for stmt in _split_statements(body):
                        names = _method_names(stmt)
                        if names and any(x.value == "{" for x in stmt):
                            params = []
                            angle = 0
                            for si, st in enumerate(stmt):
                                v = st.value
                                if v == "<":
                                    angle += 1
                                elif v == ">":
                                    angle = max(0, angle - 1)
                                elif v == "(" and angle == 0:
                                    depth, sj = 0, si
                                    while sj < len(stmt):
                                        if stmt[sj].value == "(":
                                            depth += 1
                                        elif stmt[sj].value == ")":
                                            depth -= 1
                                            if depth == 0:
                                                break
                                        sj += 1
                                    params = _param_names(
                                        stmt[si + 1 : sj])
                                    break
                            for n in names:
                                yield (cname + "::" + n, stmt,
                                       stmt[0].line, params)
                    claimed.append((i, end))
                    i = end
                    continue
        i += 1

    # Free functions: id '(' ... ')' [specifiers] '{' body '}' at any
    # position not already claimed above.
    claimed.sort()

    def next_unclaimed(pos):
        for lo, hi in claimed:
            if lo <= pos < hi:
                return hi
        return pos

    i = 0
    n = len(toks)
    while i < n:
        skip = next_unclaimed(i)
        if skip != i:
            i = skip
            continue
        t = toks[i]
        if (t.kind == "id" and t.value not in _NOT_FUNC_IDS
                and i + 1 < n and toks[i + 1].value == "("
                and (i == 0
                     or toks[i - 1].value not in ("::", ".", "->"))):
            depth, j = 0, i + 1
            while j < n:
                if toks[j].value == "(":
                    depth += 1
                elif toks[j].value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            k = j + 1
            while k < n and toks[k].value not in ("{", ";", "="):
                k += 1
            if k < n and toks[k].value == "{":
                # A '{' inside an already-claimed span belongs to that
                # unit (fully nested claims — a local struct inside
                # this body — are fine and stay claimed by the class
                # scan).
                if not any(lo <= k < hi for lo, hi in claimed):
                    end = _match_brace(toks, k)
                    yield (t.value, toks[j + 1 : end], t.line,
                           _param_names(toks[i + 2 : j]))
                    i = end
                    continue
        i += 1


def function_units(lexed):
    """Yield (qual, tokens) for every function definition (see
    function_units_ex for the shapes recognized)."""
    for qual, unit, _line, _params in function_units_ex(lexed):
        yield qual, unit


def method_bodies(lexed):
    """Map "Class::method" -> set of identifier tokens in the body
    (including, for constructors, the initializer list)."""
    out = {}
    for qual, unit in function_units(lexed):
        out.setdefault(qual, set()).update(
            t.value for t in unit if t.kind == "id")
    return out
