"""Backend-independent structural model over lexed token streams.

Extracts the two structures the rules need:

  - classes(): class/struct definitions with their data members and
    the names of methods they declare;
  - method_bodies(): the identifier set of every function body, keyed
    by qualified name ("Class::method" for out-of-line definitions,
    the same form synthesized for inline ones).

Both walk the token stream with a brace/paren depth cursor; there is
no type checking and no template instantiation. That is enough for
the checkpoint-coverage rule because PTLsim serialization code
mentions members by name.
"""

from collections import namedtuple

ClassDef = namedtuple("ClassDef", ["name", "line", "members", "methods"])
# type: the leading type identifier of the declaration ("Counter" for
# `Counter &st_hits;` and `Counter *c = nullptr;`, "std" for
# `std::deque<Counter> q;`) — enough for rules that key on a concrete
# class name without doing real type resolution.
Member = namedtuple("Member", ["name", "line", "type"])

_TYPE_QUALIFIERS = {"const", "mutable", "volatile", "unsigned", "signed"}

_KEYWORD_STMT = {
    "public", "private", "protected", "using", "typedef", "friend",
    "template", "enum", "struct", "class", "union", "static",
    "constexpr", "static_assert", "operator",
}


def _match_brace(tokens, i):
    """tokens[i] is '{'; return index one past its matching '}'."""
    depth = 0
    while i < len(tokens):
        v = tokens[i].value
        if v == "{":
            depth += 1
        elif v == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(tokens)


def _split_statements(tokens):
    """Split a class-body token list into top-level statements.

    A statement ends at a top-level ';' or at a top-level '{...}'
    block (function definition / nested aggregate); the block tokens
    are attached to the statement.
    """
    stmts, cur, depth = [], [], 0
    i = 0
    while i < len(tokens):
        t = tokens[i]
        if t.value == "{":
            j = _match_brace(tokens, i)
            cur.extend(tokens[i:j])
            i = j
            # int x{0}; continues to ';'. Function bodies just end.
            if i < len(tokens) and tokens[i].value == ";":
                cur.append(tokens[i])
                i += 1
            stmts.append(cur)
            cur = []
            continue
        cur.append(t)
        if t.value in "([":
            depth += 1
        elif t.value in ")]":
            depth -= 1
        elif t.value == ";" and depth == 0:
            stmts.append(cur)
            cur = []
        i += 1
    if cur:
        stmts.append(cur)
    return stmts


def _stmt_is_function(stmt):
    """True when the statement declares or defines a function."""
    # Heuristic: an identifier directly followed by '(' at angle
    # depth 0, before any '=' (so `std::function<void(int)> cb;` and
    # `int x = f();` stay members).
    angle = 0
    for i, t in enumerate(stmt):
        v = t.value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif v == "=" and angle == 0:
            return False
        elif v == "(" and angle == 0:
            return i > 0 and stmt[i - 1].kind == "id"
    return False


def _member_name(stmt):
    """The declared name of a member statement, or None."""
    if not stmt or stmt[0].value in _KEYWORD_STMT:
        # `static` / `using` / access labels and friends are not
        # serializable data members.
        if not (stmt and stmt[0].value in ("struct", "class")):
            return None
        # `struct Foo { ... } name;` declares a member after the body.
    if any(t.value == "operator" for t in stmt):
        return None
    if _stmt_is_function(stmt):
        return None
    # Name = last identifier before the first of ';' '=' '{' '['.
    # Type = first identifier that is not a cv/sign qualifier.
    name, mtype = None, None
    for t in stmt:
        if t.value in (";", "=", "{", "["):
            break
        if t.kind == "id":
            if mtype is None and t.value not in _TYPE_QUALIFIERS:
                mtype = t.value
            name = t
    if name is None or name.value in _KEYWORD_STMT:
        return None
    return Member(name.value, name.line, mtype)


def _method_names(stmt):
    """Names of functions declared by a class-body statement."""
    angle = 0
    for i, t in enumerate(stmt):
        v = t.value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif v == "=" and angle == 0:
            return []
        elif v == "(" and angle == 0:
            if i > 0 and stmt[i - 1].kind == "id":
                return [stmt[i - 1].value]
            return []
    return []


def classes(lexed):
    """All class/struct definitions in a lexed file."""
    out = []
    toks = lexed.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ("struct", "class"):
            # struct Name [final] [: bases] {
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                name = toks[j].value
                line = toks[j].line
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    body = toks[k + 1 : end - 1]
                    members, methods = [], []
                    for stmt in _split_statements(body):
                        methods.extend(_method_names(stmt))
                        m = _member_name(stmt)
                        if m:
                            members.append(m)
                    out.append(ClassDef(name, line, members, methods))
                    i = end
                    continue
        i += 1
    return out


def function_units(lexed):
    """Yield (qual, tokens) for every function definition.

    Out-of-line definitions (`void Class::method(...) : init... { }`)
    yield the tokens from just past the parameter list's ')' through
    the body's closing '}' — that span includes the constructor
    initializer list, which rules use to see member bindings. Inline
    definitions inside a class body yield the whole member statement.
    """
    toks = lexed.tokens

    # Out-of-line: id '::' id ... '(' ... ')' [init-list] '{' body '}'
    i = 0
    while i + 2 < len(toks):
        if (toks[i].kind == "id" and toks[i + 1].value == "::"
                and toks[i + 2].kind == "id"):
            qual = toks[i].value + "::" + toks[i + 2].value
            j = i + 3
            if j < len(toks) and toks[j].value == "(":
                # Skip to matching ')', then look for '{' before ';'.
                depth = 0
                while j < len(toks):
                    if toks[j].value == "(":
                        depth += 1
                    elif toks[j].value == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    yield qual, toks[j + 1 : end]
                    i = end
                    continue
        i += 1

    # Inline: per class, any method statement carrying a '{' body.
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and t.value in ("struct", "class"):
            j = i + 1
            if j < len(toks) and toks[j].kind == "id":
                cname = toks[j].value
                k = j + 1
                while k < len(toks) and toks[k].value not in ("{", ";"):
                    k += 1
                if k < len(toks) and toks[k].value == "{":
                    end = _match_brace(toks, k)
                    body = toks[k + 1 : end - 1]
                    for stmt in _split_statements(body):
                        names = _method_names(stmt)
                        if names and any(x.value == "{" for x in stmt):
                            for n in names:
                                yield cname + "::" + n, stmt
                    i = end
                    continue
        i += 1


def method_bodies(lexed):
    """Map "Class::method" -> set of identifier tokens in the body
    (including, for constructors, the initializer list)."""
    out = {}
    for qual, unit in function_units(lexed):
        out.setdefault(qual, set()).update(
            t.value for t in unit if t.kind == "id")
    return out
