"""Per-function control-flow graphs over the lexed token stream.

Builds a basic-block CFG for every function unit that model.py
recognizes, with an *ordered event stream* per block.  The CFG is
serialized into the semantic index (JSON-native lists/dicts only, so
the content-hash cache round-trips it bit-for-bit), and the
flow-sensitive rules (lock-discipline, checkpoint-symmetry,
simcycle-escape) consume only the serialized form — they never touch
tokens, which keeps the two-pass cache sound.

Serialized shape (see DESIGN.md §14):

    {
      "params":   ["out", "words"],          # declared parameter names
      "requires": ["registry_mu"],           # PTL_REQUIRES(...) locks
      "blocks":   [{"s": [succ ids], "e": [events]}, ...],
      "em":       [[line, loop_depth, stream, name_or_null], ...],
      "cn":       [[line, loop_depth, stream, name_or_null,
                    resolved_bool], ...],
    }

Block 0 is the entry, block 1 the synthetic exit.  Events, in source
order within a block:

    ["u",  line, name]                    identifier use
    ["g",  line, lock]                    scoped guard acquired
    ["ge", line, lock]                    scoped guard released
    ["l",  line, lock] / ["ul", ...]      manual mu.lock()/unlock()
    ["as", line, lhs, [rhs ids], raw_src] assignment to a simple local
                                          (raw_src = stamp whose
                                          .raw() feeds the RHS, else
                                          null)
    ["bo", line, a, op, b]                binary op (+ - += -= < >
                                          <= >= == !=); operands are
                                          nearest ids, "<stamp>.raw"
                                          for a direct raw() call, or
                                          "#" for literals/unknown
    ["ca", line, callee, argidx, src]     call arg carrying
                                          <src>.raw()
    ["cl", line, callee]                  plain call site

Lambda bodies are split out as sub-CFGs (qual suffixed with
"::<lambda@LINE>") so a deferred body never inherits the enclosing
scope's lock context.
"""

from . import model

# Scoped RAII guard type names (src/lib/threadsafety.h plus the std
# spellings).
GUARD_TYPES = {"LockGuard", "lock_guard", "scoped_lock", "unique_lock"}

# A call to one of these never returns: the block ends at the exit.
_NORETURN = {"fatal", "panic", "abort", "exit", "_exit",
             "__builtin_unreachable", "__builtin_trap"}

# Identifiers that are exact cycle-stamp names or carry a stamp
# suffix; mirrors rules/raw_cycle.py so the two rules agree on what a
# "cycle-typed value" looks like.
_STAMP_EXACT = {"now", "cycle", "due", "deadline"}
_STAMP_SUFFIXES = ("_cycle", "_due", "_deadline", "_until", "_stamp")

# Address-kind vocabulary (lib/guestaddr.h domains); mirrors
# rules/address_kind.py the way _STAMP_* mirrors raw_cycle.  A name
# classifies as guest-virtual, guest-physical, or neither — the taint
# rule uses the kind to detect raw values crossing the translation
# boundary without going through AddressSpace::walk().
_ADDR_VIRT_EXACT = {"va", "vaddr", "vpn"}
_ADDR_VIRT_SUBSTR = ("vaddr", "vpn")
_ADDR_PHYS_EXACT = {"pa", "paddr", "pfn", "mfn"}
_ADDR_PHYS_SUBSTR = ("paddr", "pfn", "mfn")

# Strong-type constructor names whose presence in a call argument
# puts a .raw() value back into its typed domain — not an escape.
_REWRAP_TYPES = ("SimCycle", "CycleDelta",
                 "GuestVirt", "GuestPhys", "Pfn", "Vpn")

_BINOPS = {"+", "-", "+=", "-=", "<", ">", "<=", ">=", "==", "!="}
# Tokens whose presence just before a '+'/'-' makes it unary.
_UNARY_PREV = {"=", "(", ",", ";", "{", "[", ":", "?", "<", ">", "+",
               "-", "*", "/", "%", "&", "|", "^", "!", "&&", "||",
               "<<", ">>", "return", "case", "+=", "-=", "<=", ">=",
               "==", "!=", None}

# Identifiers dropped when normalizing an emitted/consumed expression
# to a field name (casts and accessor chaff).
_NORM_DROP = {"U8", "U16", "U32", "U64", "S64", "W64", "int", "long",
              "short", "char", "unsigned", "signed", "size_t",
              "uint8_t", "uint16_t", "uint32_t", "uint64_t",
              "int64_t", "bool", "size", "raw", "data", "c_str",
              "std", "static_cast", "reinterpret_cast", "const",
              "length", "count"}

_USE_SKIP = {"if", "else", "for", "while", "do", "switch", "case",
             "default", "return", "break", "continue", "const",
             "auto", "static", "constexpr", "true", "false",
             "nullptr", "sizeof", "new", "delete", "this", "void",
             "goto", "struct", "class", "enum", "namespace", "using",
             "typedef", "template", "typename", "operator", "public",
             "private", "protected", "inline", "mutable", "volatile",
             "unsigned", "signed", "static_assert", "decltype",
             "noexcept", "alignof", "alignas", "friend", "union",
             "try", "catch", "throw", "extern", "explicit",
             "virtual", "override", "final"}


def is_stamp_name(name):
    return name in _STAMP_EXACT or name.endswith(_STAMP_SUFFIXES)


def addr_kind(name):
    """"virt" / "phys" for address-kind-named identifiers, else None.

    Exact names catch the idiomatic locals (`va`, `paddr`, `mfn`);
    substrings catch compounds (`fault_vaddr`, `last_pfn`); the `_va`/
    `_pa` suffixes catch hungarian-style fields without the substring
    false positives a bare "va" scan would produce ("invalid"...).
    """
    n = name.lower()
    if (n in _ADDR_VIRT_EXACT or n.endswith("_va")
            or any(s in n for s in _ADDR_VIRT_SUBSTR)):
        return "virt"
    if (n in _ADDR_PHYS_EXACT or n.endswith("_pa")
            or any(s in n for s in _ADDR_PHYS_SUBSTR)):
        return "phys"
    return None


def _match(toks, i, open_v, close_v):
    """toks[i] opens a bracket pair; index of the matching closer."""
    depth = 0
    while i < len(toks):
        v = toks[i].value
        if v == open_v:
            depth += 1
        elif v == close_v:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


def _raw_receiver(toks, i):
    """toks[i] is the id 'raw' in `<recv>.raw(` — resolve the
    receiver: the id before the '.', walking back over one call's
    parens for chained forms like `ev.cycle().raw()`."""
    j = i - 1
    if j < 0 or toks[j].value not in (".", "->"):
        return None
    j -= 1
    if j >= 0 and toks[j].value == ")":
        depth = 0
        while j >= 0:
            v = toks[j].value
            if v == ")":
                depth += 1
            elif v == "(":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j >= 0 and toks[j].kind == "id":
        return toks[j].value
    return None


def _norm_field(ids):
    """Normalize the identifier list of an emitted/consumed expression
    to a single field name (or None when nothing survives)."""
    kept = [v for v in ids if v not in _NORM_DROP]
    return kept[-1] if kept else None


class _Builder:
    def __init__(self, qual, role):
        self.qual = qual
        self.role = role  # None | "serialize" | "restore"
        self.blocks = [{"s": [], "e": []}, {"s": [], "e": []}]
        self.cur = 0
        self.terminated = False
        self.loop_depth = 0
        self.break_stack = []     # join block ids (loops and switch)
        self.continue_stack = []  # loop header / do-while cond ids
        self.scopes = [[]]        # guard locks per lexical scope
        self.em = []              # serialize emits
        self.cn = []              # restore consumes
        self.readers = {}         # reader-lambda name -> stream
        self.subs = []            # (sub_qual, unit_tokens)
        self.seen_uses = set()    # per-block use dedup

    # -- block plumbing ------------------------------------------------
    def _new_block(self):
        self.blocks.append({"s": [], "e": []})
        return len(self.blocks) - 1

    def _edge(self, a, b):
        if b not in self.blocks[a]["s"]:
            self.blocks[a]["s"].append(b)

    def _switch_to(self, b):
        self.cur = b
        self.terminated = False
        self.seen_uses = set()

    def _ev(self, ev):
        self.blocks[self.cur]["e"].append(ev)

    def _reachable_stmt(self):
        """Ensure statements after a terminator land in a fresh,
        unreachable block instead of mutating a dead one."""
        if self.terminated:
            self._switch_to(self._new_block())

    # -- scopes and guards ---------------------------------------------
    def _push_scope(self):
        self.scopes.append([])

    def _pop_scope(self, line):
        for lock in reversed(self.scopes.pop()):
            self._ev(["ge", line, lock])
        self.seen_uses = set()

    # -- statement-level event extraction ------------------------------
    def _stmt_events(self, stmt):
        """Extract the ordered event stream of one statement into the
        current block.  `stmt` excludes the trailing ';'."""
        requires = []
        for i, t in enumerate(stmt):
            if (t.kind == "id" and t.value == "PTL_REQUIRES"
                    and i + 1 < len(stmt)
                    and stmt[i + 1].value == "("):
                j = _match(stmt, i + 1, "(", ")")
                requires.extend(x.value for x in stmt[i + 1 : j]
                                if x.kind == "id")
        stmt = model.strip_annotations(stmt)
        if not stmt:
            return

        # Reader-lambda (restore idiom):
        #   auto next = [&](U64 &v) { ... v = words[i++]; ... };
        # Register the reader and suppress all other extraction — the
        # lambda's internal indexing is modelled at its call sites.
        if self.role == "restore":
            reader = self._try_reader_lambda(stmt)
            if reader:
                return

        # Plain lambdas become sub-CFGs with an empty entry context.
        stmt = self._split_lambdas(stmt)

        n = len(stmt)
        i = 0
        consumed_call_parens = []  # spans already handled as guards
        while i < n:
            t = stmt[i]
            v = t.value

            # Scoped guard declaration:
            #   LockGuard g(mu); std::lock_guard<std::mutex> g(mu);
            if (t.kind == "id" and v in GUARD_TYPES):
                j = i + 1
                if j < n and stmt[j].value == "<":
                    j = _match(stmt, j, "<", ">") + 1
                if (j + 1 < n and stmt[j].kind == "id"
                        and stmt[j + 1].value == "("):
                    close = _match(stmt, j + 1, "(", ")")
                    lock = None
                    for x in stmt[j + 2 : close]:
                        if x.kind == "id" and x.value != "this":
                            lock = x.value
                        elif x.value == ",":
                            break
                    if lock:
                        self._ev(["g", t.line, lock])
                        self.scopes[-1].append(lock)
                        self.seen_uses = set()
                        consumed_call_parens.append((j + 1, close))
                        i = close + 1
                        continue

            # Manual mu.lock() / mu.unlock().
            if (t.kind == "id" and v in ("lock", "unlock")
                    and i >= 2 and stmt[i - 1].value in (".", "->")
                    and stmt[i - 2].kind == "id"
                    and i + 1 < n and stmt[i + 1].value == "("):
                kind = "l" if v == "lock" else "ul"
                self._ev([kind, t.line, stmt[i - 2].value])
                self.seen_uses = set()
                i += 2
                continue

            if t.kind == "id":
                # Call site.
                if (i + 1 < n and stmt[i + 1].value == "("
                        and v not in model._NOT_FUNC_IDS
                        and v not in _USE_SKIP):
                    self._ev(["cl", t.line, v])
                    self._call_raw_args(stmt, i)
                    if self.role == "restore" and v in self.readers:
                        self._reader_consume(stmt, i)
                if v not in _USE_SKIP:
                    if v not in self.seen_uses:
                        self._ev(["u", t.line, v])
                        self.seen_uses.add(v)
                i += 1
                continue

            if v in _BINOPS:
                self._binop_event(stmt, i)
                i += 1
                continue

            i += 1

        self._top_assign(stmt)

        if self.role == "serialize":
            self._emit_scan(stmt)
        elif self.role == "restore":
            self._consume_scan(stmt)

        for r in requires:
            # PTL_REQUIRES on a nested declaration — rare; surface as
            # an acquired context for the rest of the function.
            self._ev(["g", stmt[0].line if stmt else 0, r])

    def _split_lambdas(self, stmt):
        """Cut `[caps](params){ body }` bodies out of the statement,
        registering each as a sub-CFG."""
        out, i, n = [], 0, len(stmt)
        while i < n:
            t = stmt[i]
            if t.value == "[" and self._lambda_intro(stmt, i):
                close = _match(stmt, i, "[", "]")
                j = close + 1
                if j < n and stmt[j].value == "(":
                    j = _match(stmt, j, "(", ")") + 1
                while j < n and stmt[j].value not in ("{", ";", ","):
                    j += 1
                if j < n and stmt[j].value == "{":
                    end = _match(stmt, j, "{", "}")
                    sub_qual = "%s::<lambda@%d>" % (self.qual, t.line)
                    self.subs.append((sub_qual, stmt[j : end + 1]))
                    out.extend(stmt[i : j])
                    i = end + 1
                    continue
            out.append(t)
            i += 1
        return out

    @staticmethod
    def _lambda_intro(stmt, i):
        """Distinguish a lambda introducer '[' from array indexing:
        indexing follows an id/')'/']'."""
        if i == 0:
            return True
        return stmt[i - 1].value not in (")", "]") and \
            stmt[i - 1].kind != "id"

    def _try_reader_lambda(self, stmt):
        """Detect `auto NAME = [..](..){ .. STREAM[i++] .. };` and
        register NAME as a reader over STREAM."""
        eq = None
        for i, t in enumerate(stmt):
            if t.value == "=":
                eq = i
                break
            if t.value in ("(", "["):
                return None
        if eq is None or eq == 0 or stmt[eq - 1].kind != "id":
            return None
        if eq + 1 >= len(stmt) or stmt[eq + 1].value != "[":
            return None
        name = stmt[eq - 1].value
        stream = None
        for i in range(eq + 1, len(stmt) - 1):
            if (stmt[i].kind == "id" and stmt[i + 1].value == "["
                    and any(x.value == "++"
                            for x in stmt[i + 1:
                                          _match(stmt, i + 1, "[",
                                                 "]") + 1])):
                stream = stmt[i].value
                break
        if stream is None:
            return None
        self.readers[name] = stream
        return name

    # -- operand helpers -----------------------------------------------
    def _operand_left(self, stmt, i):
        j = i - 1
        while j >= 0:
            t = stmt[j]
            if t.kind == "id":
                if t.value == "raw":
                    recv = _raw_receiver(stmt, j)
                    if recv:
                        return recv + ".raw"
                    return "#"
                if t.value in _NORM_DROP and t.value != "raw":
                    j -= 1
                    continue
                return t.value
            if t.kind == "num":
                return "#"
            j -= 1
        return "#"

    def _operand_right(self, stmt, i):
        j, n = i + 1, len(stmt)
        while j < n:
            t = stmt[j]
            if t.kind == "id":
                if t.value in _NORM_DROP and t.value != "raw":
                    j += 1
                    continue
                if (j + 2 < n and stmt[j + 1].value in (".", "->")
                        and stmt[j + 2].value == "raw"):
                    return t.value + ".raw"
                return t.value
            if t.kind == "num":
                return "#"
            j += 1
        return "#"

    def _binop_event(self, stmt, i):
        op = stmt[i].value
        if op in ("+", "-"):
            prev = stmt[i - 1].value if i > 0 else None
            if prev in _UNARY_PREV:
                return
        a = self._operand_left(stmt, i)
        b = self._operand_right(stmt, i)
        if a == "#" and b == "#":
            return
        self._ev(["bo", stmt[i].line, a, op, b])

    def _top_assign(self, stmt):
        """First top-level '=' → ["as", line, lhs, [rhs ids], raw_src]
        when the LHS is a simple local identifier."""
        depth = 0
        for i, t in enumerate(stmt):
            v = t.value
            if v in ("(", "[", "{"):
                depth += 1
            elif v in (")", "]", "}"):
                depth -= 1
            elif v == "=" and depth == 0:
                if i == 0 or stmt[i - 1].kind != "id":
                    return
                if i >= 2 and stmt[i - 2].value in (".", "->"):
                    return
                lhs = stmt[i - 1].value
                rhs = stmt[i + 1:]
                rhs_ids = [x.value for x in rhs if x.kind == "id"
                           and x.value not in _NORM_DROP]
                raw_src = None
                for j, x in enumerate(rhs):
                    if x.kind == "id" and x.value == "raw":
                        recv = _raw_receiver(rhs, j)
                        if recv:
                            raw_src = recv
                            break
                self._ev(["as", t.line, lhs, rhs_ids, raw_src])
                return

    def _call_raw_args(self, stmt, i):
        """stmt[i] is a callee id followed by '(' — record args that
        carry a .raw() of a stamp-named receiver."""
        close = _match(stmt, i + 1, "(", ")")
        args, seg, depth = [], [], 0
        for t in stmt[i + 2 : close]:
            v = t.value
            if v in ("(", "[", "{", "<"):
                depth += 1
            elif v in (")", "]", "}", ">"):
                depth -= 1
            if v == "," and depth == 0:
                args.append(seg)
                seg = []
            else:
                seg.append(t)
        if seg:
            args.append(seg)
        for idx, arg in enumerate(args):
            # Re-wrapping at the call site (`f(SimCycle(x.raw()))`,
            # `f(GuestPhys(p.raw()))`) puts the value back in a strong
            # domain — not an escape for the rules keyed on the real
            # callee.  The event is still recorded, with the wrapping
            # constructor as the callee, so address-kind can flag a
            # raw value re-wrapped into the *opposite* kind
            # (`GuestPhys(va.raw())`).
            rewrap = next((x.value for x in arg
                           if x.kind == "id"
                           and x.value in _REWRAP_TYPES), None)
            for j, x in enumerate(arg):
                if x.kind == "id" and x.value == "raw":
                    recv = _raw_receiver(arg, j)
                    if recv:
                        callee = rewrap or stmt[i].value
                        argpos = 0 if rewrap else idx
                        self._ev(["ca", stmt[i].line, callee,
                                  argpos, recv])
                        break

    # -- serialize/restore stream extraction ---------------------------
    def _emit_scan(self, stmt):
        """`stream.push_back(expr)` → ["em", line, depth, stream,
        field]."""
        n = len(stmt)
        for i in range(n - 3):
            if (stmt[i].kind == "id"
                    and stmt[i + 1].value in (".", "->")
                    and stmt[i + 2].kind == "id"
                    and stmt[i + 2].value in ("push_back",
                                              "emplace_back")
                    and i + 3 < n and stmt[i + 3].value == "("):
                close = _match(stmt, i + 3, "(", ")")
                ids = [x.value for x in stmt[i + 4 : close]
                       if x.kind == "id"]
                self.em.append([stmt[i].line, self.loop_depth,
                                stmt[i].value, _norm_field(ids)])

    def _consume_scan(self, stmt):
        """Indexed reads `stream[...]` (with a num or ++ index) →
        ["cn", line, depth, stream, name, resolved]."""
        n = len(stmt)
        i = 0
        while i < n - 1:
            t = stmt[i]
            if (t.kind == "id" and stmt[i + 1].value == "["
                    and not (i > 0
                             and stmt[i - 1].value in (".", "->"))):
                close = _match(stmt, i + 1, "[", "]")
                inner = stmt[i + 2 : close]
                # Only post-incremented cursors and literal indices
                # count as stream reads — `edram[i] = ...` on an
                # assignment LHS is container addressing, not a
                # consume.
                idx_ok = (any(x.value == "++" for x in inner)
                          or (len(inner) == 1
                              and inner[0].kind == "num"))
                if idx_ok and inner:
                    name, resolved = self._consume_target(
                        stmt, i, close)
                    self.cn.append([t.line, self.loop_depth, t.value,
                                    name, resolved])
                i = close + 1
                continue
            i += 1

    def _reader_consume(self, stmt, i):
        """stmt[i] is a registered reader call `next(expr)` — one
        consume of the reader's stream."""
        close = _match(stmt, i + 1, "(", ")")
        arg = stmt[i + 2 : close]
        stream = self.readers[stmt[i].value]
        name, resolved = None, False
        ids = [x for x in arg if x.kind == "id"]
        if ids:
            last = ids[-1]
            pos = stmt.index(last, i)
            if pos >= 2 and stmt[pos - 1].value in (".", "->"):
                name, resolved = last.value, True
            else:
                name = last.value
                resolved = False
                partner = self._rename_partner(stmt, close, name)
                if partner:
                    name, resolved = partner, True
        self.cn.append([stmt[i].line, self.loop_depth, stream, name,
                        resolved])

    def _consume_target(self, stmt, i, close):
        """Name the value consumed by `stream[...]` at stmt[i]: an
        assignment target (member form resolves immediately) or a
        comparison partner in the same statement."""
        # Assignment form: walk back for a top-level '=' earlier in
        # the statement.
        depth = 0
        for j in range(i):
            v = stmt[j].value
            if v in ("(", "[", "{"):
                depth += 1
            elif v in (")", "]", "}"):
                depth -= 1
            elif v == "=" and depth == 0 and j > 0:
                k = j - 1
                if stmt[k].value == "]":
                    # `arr[i] = stream[c++]` — name the array.
                    d = 0
                    while k >= 0:
                        if stmt[k].value == "]":
                            d += 1
                        elif stmt[k].value == "[":
                            d -= 1
                            if d == 0:
                                break
                        k -= 1
                    k -= 1
                if k < 0 or stmt[k].kind != "id":
                    return None, False
                nm = stmt[k].value
                member_form = k >= 1 and stmt[k - 1].value in (".",
                                                               "->")
                return nm, bool(member_form)
        # Comparison form: `stream[k] ==|!= PARTNER` right after.
        j = close + 1
        while j < len(stmt) and stmt[j].value in (")",):
            j += 1
        if j < len(stmt) and stmt[j].value in ("==", "!="):
            k = j + 1
            while k < len(stmt):
                if stmt[k].kind == "id" \
                        and stmt[k].value not in _NORM_DROP:
                    return stmt[k].value, True
                if stmt[k].kind == "num" or stmt[k].value in (",",
                                                              "||",
                                                              "&&"):
                    break
                k += 1
        return None, False

    def _rename_partner(self, stmt, start, name):
        """After a bare-local consume, look for `name ==|!= OTHER` (or
        reversed) later in the same statement; OTHER names the
        field."""
        n = len(stmt)
        for j in range(start, n):
            if stmt[j].value in ("==", "!="):
                left = stmt[j - 1] if j > 0 else None
                if left is not None and left.kind == "id" \
                        and left.value == name:
                    k = j + 1
                    while k < n:
                        if stmt[k].kind == "id" \
                                and stmt[k].value not in _NORM_DROP:
                            return stmt[k].value
                        if stmt[k].kind == "num":
                            return None
                        k += 1
                if j + 1 < n and stmt[j + 1].kind == "id" \
                        and stmt[j + 1].value == name \
                        and j > 0 and stmt[j - 1].kind == "id":
                    return stmt[j - 1].value
        return None

    # -- statement structure parsing -----------------------------------
    def parse_body(self, toks, lo, hi):
        """Parse the statements of toks[lo:hi] (a brace-less span)."""
        i = lo
        while i < hi:
            i = self._parse_one(toks, i, hi)

    def _parse_one(self, toks, i, hi):
        """Parse exactly one statement starting at i; return the index
        just past it."""
        while i < hi and toks[i].value == ";":
            i += 1
        if i >= hi:
            return hi
        t = toks[i]
        v = t.value

        if v == "{":
            end = _match(toks, i, "{", "}")
            self._reachable_stmt()
            self._push_scope()
            self.parse_body(toks, i + 1, end)
            self._pop_scope(toks[end].line)
            return end + 1

        if t.kind == "id":
            if v == "if":
                return self._parse_if(toks, i, hi)
            if v in ("while",):
                return self._parse_while(toks, i, hi)
            if v == "for":
                return self._parse_for(toks, i, hi)
            if v == "do":
                return self._parse_do(toks, i, hi)
            if v == "switch":
                return self._parse_switch(toks, i, hi)
            if v == "return":
                j = self._stmt_end(toks, i + 1, hi)
                self._reachable_stmt()
                self._stmt_events(toks[i + 1 : j])
                self._edge(self.cur, 1)
                self.terminated = True
                return j + 1
            if v in ("break", "continue"):
                self._reachable_stmt()
                stack = (self.break_stack if v == "break"
                         else self.continue_stack)
                if stack:
                    self._edge(self.cur, stack[-1])
                self.terminated = True
                return self._stmt_end(toks, i, hi) + 1
            if v == "goto":
                # No gotos in this tree; treat as an exit so the
                # following code is not falsely dominated.
                self._reachable_stmt()
                self._edge(self.cur, 1)
                self.terminated = True
                return self._stmt_end(toks, i, hi) + 1
            if v in ("case", "default"):
                # Stray label outside our switch segmentation: skip
                # to ':'.
                j = i
                while j < hi and toks[j].value != ":":
                    j += 1
                return j + 1

        # Simple statement.
        j = self._stmt_end(toks, i, hi)
        self._reachable_stmt()
        stmt = toks[i:j]
        self._stmt_events(stmt)
        if stmt and stmt[0].kind == "id" \
                and stmt[0].value in _NORETURN:
            self._edge(self.cur, 1)
            self.terminated = True
        return j + 1

    @staticmethod
    def _stmt_end(toks, i, hi):
        """Index of the ';' ending the simple statement at i (bracket
        aware; braced initializers and inline lambda bodies are part
        of the statement)."""
        depth = 0
        while i < hi:
            v = toks[i].value
            if v in ("(", "["):
                depth += 1
            elif v in (")", "]"):
                depth -= 1
            elif v == "{":
                i = _match(toks, i, "{", "}")
            elif v == ";" and depth <= 0:
                return i
            i += 1
        return hi

    def _cond_span(self, toks, i, hi):
        """toks[i] is a keyword followed by '('; return (events_span,
        after_close_index)."""
        j = i + 1
        while j < hi and toks[j].value != "(":
            j += 1
        if j >= hi:
            return (i + 1, i + 1), i + 1
        close = _match(toks, j, "(", ")")
        return (j + 1, close), close + 1

    def _parse_branch(self, toks, i, hi):
        """One controlled statement (brace block or single statement)
        in its own lexical scope."""
        self._push_scope()
        j = self._parse_one(toks, i, hi)
        line = toks[min(j, hi) - 1].line if j > i else toks[i].line
        self._pop_scope(line)
        return j

    def _parse_if(self, toks, i, hi):
        (clo, chi), body = self._cond_span(toks, i, hi)
        self._reachable_stmt()
        self._stmt_events(toks[clo:chi])
        head = self.cur

        then_b = self._new_block()
        self._edge(head, then_b)
        self._switch_to(then_b)
        j = self._parse_branch(toks, body, hi)
        then_end, then_term = self.cur, self.terminated

        else_term, else_end = None, None
        if j < hi and toks[j].kind == "id" and toks[j].value == "else":
            else_b = self._new_block()
            self._edge(head, else_b)
            self._switch_to(else_b)
            j = self._parse_branch(toks, j + 1, hi)
            else_end, else_term = self.cur, self.terminated

        join = self._new_block()
        if not then_term:
            self._edge(then_end, join)
        if else_end is not None:
            if not else_term:
                self._edge(else_end, join)
        else:
            self._edge(head, join)
        self._switch_to(join)
        return j

    def _parse_while(self, toks, i, hi):
        self._reachable_stmt()
        header = self._new_block()
        self._edge(self.cur, header)
        self._switch_to(header)
        (clo, chi), body = self._cond_span(toks, i, hi)
        self._stmt_events(toks[clo:chi])
        join = self._new_block()
        self._edge(header, join)
        body_b = self._new_block()
        self._edge(header, body_b)
        self._switch_to(body_b)
        self.loop_depth += 1
        self.break_stack.append(join)
        self.continue_stack.append(header)
        j = self._parse_branch(toks, body, hi)
        if not self.terminated:
            self._edge(self.cur, header)
        self.continue_stack.pop()
        self.break_stack.pop()
        self.loop_depth -= 1
        self._switch_to(join)
        return j

    def _parse_for(self, toks, i, hi):
        self._reachable_stmt()
        (clo, chi), body = self._cond_span(toks, i, hi)
        inner = toks[clo:chi]
        # Split classic for(init; cond; inc) at top-level ';'.
        parts, seg, depth = [], [], 0
        for t in inner:
            v = t.value
            if v in ("(", "[", "{"):
                depth += 1
            elif v in (")", "]", "}"):
                depth -= 1
            if v == ";" and depth == 0:
                parts.append(seg)
                seg = []
            else:
                seg.append(t)
        parts.append(seg)
        if len(parts) >= 2:
            init, cond = parts[0], parts[1]
            inc = parts[2] if len(parts) > 2 else []
        else:
            init, cond, inc = [], parts[0], []  # range-for

        if init:
            self._stmt_events(init)
        header = self._new_block()
        self._edge(self.cur, header)
        self._switch_to(header)
        if cond:
            self._stmt_events(cond)
        if inc:
            self._stmt_events(inc)
        join = self._new_block()
        self._edge(header, join)
        body_b = self._new_block()
        self._edge(header, body_b)
        self._switch_to(body_b)
        self.loop_depth += 1
        self.break_stack.append(join)
        self.continue_stack.append(header)
        j = self._parse_branch(toks, body, hi)
        if not self.terminated:
            self._edge(self.cur, header)
        self.continue_stack.pop()
        self.break_stack.pop()
        self.loop_depth -= 1
        self._switch_to(join)
        return j

    def _parse_do(self, toks, i, hi):
        self._reachable_stmt()
        body_b = self._new_block()
        self._edge(self.cur, body_b)
        cond_b = self._new_block()
        join = self._new_block()
        self._switch_to(body_b)
        self.loop_depth += 1
        self.break_stack.append(join)
        self.continue_stack.append(cond_b)
        j = self._parse_branch(toks, i + 1, hi)
        if not self.terminated:
            self._edge(self.cur, cond_b)
        self.continue_stack.pop()
        self.break_stack.pop()
        self.loop_depth -= 1
        # `while (cond);`
        if j < hi and toks[j].kind == "id" and toks[j].value == "while":
            (clo, chi), after = self._cond_span(toks, j, hi)
            self._switch_to(cond_b)
            self._stmt_events(toks[clo:chi])
            self._edge(cond_b, body_b)
            self._edge(cond_b, join)
            j = after
            if j < hi and toks[j].value == ";":
                j += 1
        else:
            self._edge(cond_b, join)
        self._switch_to(join)
        return j

    def _parse_switch(self, toks, i, hi):
        self._reachable_stmt()
        (clo, chi), body = self._cond_span(toks, i, hi)
        self._stmt_events(toks[clo:chi])
        head = self.cur
        join = self._new_block()
        if body >= hi or toks[body].value != "{":
            self._edge(head, join)
            self._switch_to(join)
            return body
        end = _match(toks, body, "{", "}")
        # Segment the body at top-level case/default labels.
        segments, labels = [], []
        j = body + 1
        depth = 0
        seg_start = None
        while j < end:
            v = toks[j].value
            if v in ("(", "[", "{"):
                if v == "{":
                    j = _match(toks, j, "{", "}")
                else:
                    depth += 1
            elif v in (")", "]"):
                depth -= 1
            elif depth == 0 and toks[j].kind == "id" \
                    and v in ("case", "default"):
                k = j
                while k < end and toks[k].value != ":":
                    k += 1
                if seg_start is not None:
                    segments.append((seg_start, j))
                labels.append(v)
                seg_start = k + 1
                j = k + 1
                continue
            j += 1
        if seg_start is not None:
            segments.append((seg_start, end))

        has_default = "default" in labels
        self.break_stack.append(join)
        prev_end, prev_term = None, True
        # Consecutive labels share a segment start, so segments and
        # entry edges align per *distinct* segment.
        for (lo, shi) in segments:
            blk = self._new_block()
            self._edge(head, blk)
            if prev_end is not None and not prev_term:
                self._edge(prev_end, blk)  # fallthrough
            self._switch_to(blk)
            self._push_scope()
            self.parse_body(toks, lo, shi)
            self._pop_scope(toks[min(shi, len(toks) - 1)].line)
            prev_end, prev_term = self.cur, self.terminated
        self.break_stack.pop()
        if prev_end is not None and not prev_term:
            self._edge(prev_end, join)
        if not has_default or not segments:
            self._edge(head, join)
        self._switch_to(join)
        return end + 1


def _unit_body(unit):
    """(requires, body_lo, body_hi) for a function unit: the body is
    the outermost '{...}' span; tokens before it hold PTL_REQUIRES
    annotations (out-of-line/free shapes) or the declaration head
    (inline shape)."""
    for i, t in enumerate(unit):
        if t.value == "{":
            end = _match(unit, i, "{", "}")
            head = unit[:i]
            requires = []
            for j, h in enumerate(head):
                if (h.kind == "id" and h.value == "PTL_REQUIRES"
                        and j + 1 < len(head)
                        and head[j + 1].value == "("):
                    close = _match(head, j + 1, "(", ")")
                    requires.extend(x.value
                                    for x in head[j + 2 : close]
                                    if x.kind == "id")
            return requires, i + 1, end
    return [], 0, 0


def _role(qual):
    leaf = qual.rsplit("::", 1)[-1]
    if leaf == "serialize":
        return "serialize"
    if leaf == "restore":
        return "restore"
    return None


def build_cfg(qual, unit, params):
    """Build serialized CFGs for one function unit.  Returns a list of
    (qual, cfg_dict) — the unit itself first, then any lambda
    sub-CFGs found in its body."""
    out = []
    pending = [(qual, unit, list(params))]
    while pending:
        q, u, ps = pending.pop(0)
        requires, lo, hi = _unit_body(u)
        b = _Builder(q, _role(q))
        b.parse_body(u, lo, hi)
        b._pop_scope(u[hi].line if hi < len(u) else 0)
        if not b.terminated:
            b._edge(b.cur, 1)
        cfg = {
            "params": ps,
            "requires": requires,
            "blocks": b.blocks,
            "em": b.em,
            "cn": b.cn,
        }
        out.append((q, cfg))
        for sub_qual, sub_unit in b.subs:
            pending.append((sub_qual, sub_unit, []))
    return out
