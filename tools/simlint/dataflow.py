"""Forward dataflow over serialized CFGs.

A deliberately small framework: rules supply a transfer function over
the per-block event stream and pick one of two meets —

  - must (intersection): facts that hold on *all* paths into a block.
    Non-entry blocks start at TOP (represented by None) so the first
    visit seeds them instead of erasing everything.  Used by
    lock-discipline ("which locks are certainly held here").
  - may (union): facts that hold on *some* path.  Blocks start at the
    empty set.  Used by simcycle-escape taint.

Blocks are the JSON-native dicts produced by cfg.build_cfg:
{"s": [successor ids], "e": [events]}.  Block 0 is the entry; block 1
is the synthetic exit and is never interesting to rules.

solve() returns the *input* fact set of every block (a frozenset, or
None for blocks whose input stayed TOP — i.e. unreachable blocks
under must-analysis).  Rules then re-run the transfer inside a block
themselves to get the fact set at a particular event, which keeps the
framework oblivious to event shapes.
"""


def preds(blocks):
    p = [[] for _ in blocks]
    for i, b in enumerate(blocks):
        for s in b["s"]:
            if 0 <= s < len(blocks):
                p[s].append(i)
    return p


def solve(blocks, entry_facts, transfer, meet="must"):
    """Fixpoint over `blocks`.

    entry_facts: iterable of facts at the entry block's input.
    transfer(facts_set, events) -> new facts set (must not mutate its
    input).
    Returns: list of per-block *input* facts (frozenset or None).
    """
    n = len(blocks)
    if meet == "must":
        inp = [None] * n  # None == TOP (no path seen yet)
    else:
        inp = [frozenset()] * n
    inp[0] = frozenset(entry_facts)
    out = [None] * n

    work = [0]
    in_work = [False] * n
    in_work[0] = True
    while work:
        i = work.pop(0)
        in_work[i] = False
        if inp[i] is None:
            continue
        new_out = frozenset(transfer(set(inp[i]), blocks[i]["e"]))
        if new_out == out[i]:
            continue
        out[i] = new_out
        for s in blocks[i]["s"]:
            if not (0 <= s < n):
                continue
            if meet == "must":
                merged = new_out if inp[s] is None \
                    else inp[s] & new_out
            else:
                merged = inp[s] | new_out
            if merged != inp[s]:
                inp[s] = merged
                if not in_work[s]:
                    work.append(s)
                    in_work[s] = True
    return inp


def facts_at(inp_facts, events, upto, transfer):
    """Re-run `transfer` over a prefix of a block's events: the fact
    set just before events[upto]."""
    if inp_facts is None:
        return None
    return transfer(set(inp_facts), events[:upto])
