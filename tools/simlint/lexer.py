"""Token-level C++ lexer.

Just enough lexing for simlint's rules: identifiers, numbers, strings,
punctuation, with line numbers, plus a side table of `// simlint: ...`
waiver comments by line. Preprocessor directives are retained as
`pp` tokens (one per directive) so rules can skip them.

This is NOT a parser; rules that need structure (class bodies, member
declarations, function bodies) use model.py, which walks the token
stream with a brace-depth cursor.
"""

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "value", "line"])

# kinds: id num str chr punct pp

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<line_comment>//[^\n]*)
    | (?P<block_comment>/\*.*?\*/)
    | (?P<pp>\#[^\n]*(?:\\\n[^\n]*)*)
    | (?P<rawstr>(?:u8|[uUL])?R"(?P<rsdelim>[^()\s\\"]*)\(
                 .*?\)(?P=rsdelim)")
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<chr>'(?:\\.|[^'\\\n])*')
    | (?P<num>
         0[xX][0-9a-fA-F']+[uUlL]*
       | \d[\d']*(?:\.\d+)?(?:[eE][+-]?\d+)?[uUlLfF]*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=
               |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|<=>|.)
    """,
    re.VERBOSE | re.DOTALL,
)

# A waiver is a kebab-case name with an optional parenthesized
# argument: `// simlint: nondet-ok` or
# `// simlint: shared-guarded(registry_mu)`. Arguments carry the
# justification a rule demands (the lock name for shared-guarded);
# they may not contain commas, which separate multiple waivers.
_WAIVER_ITEM = r"[a-z-]+(?:\([A-Za-z0-9_:.\s]*\))?"
_WAIVER_RE = re.compile(
    r"//\s*simlint:\s*(%s(?:\s*,\s*%s)*)" % (_WAIVER_ITEM, _WAIVER_ITEM))


class LexedFile:
    """Tokens plus per-line waiver sets for one source file."""

    def __init__(self, path, text):
        self.path = path
        self.tokens = []
        self.waivers = {}  # line -> set of waiver names
        line = 1
        for m in _TOKEN_RE.finditer(text):
            kind = m.lastgroup
            value = m.group()
            if kind in ("line_comment", "block_comment"):
                w = _WAIVER_RE.search(value)
                if w:
                    names = {s.strip() for s in w.group(1).split(",")}
                    self.waivers.setdefault(line, set()).update(names)
            elif kind != "ws":
                # Raw string literals (R"delim(...)delim", possibly
                # spanning lines) are opaque data, not code: lex them
                # as a single `str` token so their contents can never
                # trip token-pattern rules.
                if kind == "rawstr":
                    kind = "str"
                self.tokens.append(Token(kind, value, line))
            line += value.count("\n")

    def waived(self, line, name):
        return waiver_match(self.waivers.get(line, set()), name)


def waiver_match(waivers, name):
    """True when `name` is waived: exact match, or (for waivers that
    carry an argument) a `name(...)` entry."""
    if name in waivers:
        return True
    prefix = name + "("
    return any(w.startswith(prefix) for w in waivers)


def waiver_arg(waivers, name):
    """The argument of a `name(arg)` waiver on this line, or None."""
    prefix = name + "("
    for w in waivers:
        if w.startswith(prefix) and w.endswith(")"):
            return w[len(prefix):-1].strip()
    return None


def lex_file(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return LexedFile(path, f.read())
