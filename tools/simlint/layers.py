"""Loader/validator for tools/simlint/layers.toml (the module DAG).

Returns a dict the layering and cross-domain-access rules consume:

  rank    module -> layer index (0 = bottom)
  allow   set of (from_module, to_module) declared same-layer edges
  path    the config file path (for error reporting)
  sublayers  module -> {file stem -> group index} from [sublayers]
          (simlint v4): the intra-module ordering the layering rule
          applies to includes that stay inside one module
  concurrency  dict with the [concurrency] section (simlint v3):
      domain_scoped       set of modules holding per-Domain state
      channel_types       type names carrying legal cross-domain
                          traffic (event queue / channels)
      cross_domain_types  type names of whole-machine aggregates a
                          domain-scoped module may not touch directly

Raises LayerConfigError on a malformed config — unknown modules in
`allow` or `domain_scoped`, duplicate module assignment, or an
`allow` edge that is not same-layer (upward edges can never be
declared legal; downward ones are implicitly legal and declaring
them is a sign of confusion).

Python >= 3.11 parses via tomllib; older interpreters fall back to a
tiny literal-eval reader that understands exactly the subset this
file uses (arrays of strings under [layers] / [concurrency]).
"""

import ast
import re


class LayerConfigError(Exception):
    pass


def _parse_toml(path):
    try:
        import tomllib
    except ImportError:
        tomllib = None
    if tomllib is not None:
        with open(path, "rb") as f:
            return tomllib.load(f)
    # Fallback: the arrays in this file are valid Python literals.
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    text = re.sub(r"#[^\n]*", "", text)

    def grab_at(i):
        depth, j = 0, i
        while j < len(text):
            if text[j] == "[":
                depth += 1
            elif text[j] == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        return ast.literal_eval(text[i : j + 1])

    def grab(key):
        m = re.search(r"(?<!\w)" + key + r"\s*=\s*(\[)", text)
        return grab_at(m.start(1)) if m else None

    layers, conc = {}, {}
    for key in ("order", "allow"):
        v = grab(key)
        if v is not None:
            layers[key] = v
    for key in ("domain_scoped", "channel_types", "cross_domain_types"):
        v = grab(key)
        if v is not None:
            conc[key] = v
    # [sublayers] keys are module names, so the section is scanned
    # generically rather than by a fixed key list.
    subl = {}
    sect = re.search(r"^\[sublayers\]", text, re.M)
    if sect:
        body = text[sect.end():]
        stop = re.search(r"^\[", body, re.M)
        if stop:
            body = body[: stop.start()]
        for m in re.finditer(r"(?<!\w)(\w+)\s*=\s*(\[)", body):
            subl[m.group(1)] = grab_at(sect.end() + m.start(2))
    return {"layers": layers, "concurrency": conc, "sublayers": subl}


def load(path):
    data = _parse_toml(path)
    layers = data.get("layers", {})
    order = layers.get("order")
    if not order or not isinstance(order, list):
        raise LayerConfigError("%s: missing [layers] order" % path)
    rank = {}
    for i, group in enumerate(order):
        for mod in group:
            if mod in rank:
                raise LayerConfigError(
                    "%s: module '%s' assigned to two layers"
                    % (path, mod))
            rank[mod] = i
    allow = set()
    for edge in layers.get("allow", []):
        if len(edge) != 2:
            raise LayerConfigError(
                "%s: malformed allow edge %r" % (path, edge))
        src, dst = edge
        if src not in rank or dst not in rank:
            raise LayerConfigError(
                "%s: allow edge %s -> %s names an undeclared module"
                % (path, src, dst))
        if rank[dst] > rank[src]:
            raise LayerConfigError(
                "%s: allow edge %s -> %s goes UP the layer order — "
                "upward dependencies cannot be declared legal"
                % (path, src, dst))
        if rank[dst] < rank[src]:
            raise LayerConfigError(
                "%s: allow edge %s -> %s is downward — already "
                "implicitly legal, remove it" % (path, src, dst))
        allow.add((src, dst))
    sublayers = {}
    for mod, sub_order in (data.get("sublayers") or {}).items():
        if mod not in rank:
            raise LayerConfigError(
                "%s: [sublayers] names undeclared module '%s'"
                % (path, mod))
        if not sub_order or not isinstance(sub_order, list):
            raise LayerConfigError(
                "%s: [sublayers] %s must be a non-empty list of "
                "groups" % (path, mod))
        subrank = {}
        for i, group in enumerate(sub_order):
            for stem in group:
                if stem in subrank:
                    raise LayerConfigError(
                        "%s: [sublayers] %s assigns stem '%s' to two "
                        "groups" % (path, mod, stem))
                subrank[stem] = i
        sublayers[mod] = subrank
    conc_raw = data.get("concurrency", {})
    domain_scoped = set(conc_raw.get("domain_scoped", []))
    for mod in domain_scoped:
        if mod not in rank:
            raise LayerConfigError(
                "%s: [concurrency] domain_scoped names undeclared "
                "module '%s'" % (path, mod))
    concurrency = {
        "domain_scoped": domain_scoped,
        "channel_types": set(conc_raw.get("channel_types", [])),
        "cross_domain_types":
            set(conc_raw.get("cross_domain_types", [])),
    }
    return {"rank": rank, "allow": allow, "path": path,
            "sublayers": sublayers, "concurrency": concurrency}
