"""CTest entry for the simlint golden fixtures and the index cache.

Part 1 runs the driver's --self-test: every rule must ship at least
one bad and one good fixture, each bad fixture must trip exactly its
own rule, and each good fixture must be clean under ALL rules.

Part 2 proves the pass-1 cache is correct, not just fast:

  - a cold load_or_build() populates the cache (miss),
  - an identical reload is served from the cache (hit) with facts
    equal to the cold build,
  - editing the file invalidates the entry (content hash changes) and
    the re-built index reflects the edit.
"""

import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from simlint import index as index_mod  # noqa: E402


def run_self_test():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "scripts", "simlint.py"),
         "--self-test"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        print("FAIL: simlint --self-test exited %d" % proc.returncode)
        return 1
    return 0


def run_cache_test():
    failures = 0

    def check(cond, what):
        nonlocal failures
        print("%s cache: %s" % ("ok  " if cond else "FAIL", what))
        if not cond:
            failures += 1

    tmp = tempfile.mkdtemp(prefix="simlint-cache-test-")
    try:
        src = os.path.join(tmp, "widget.cc")
        cache = os.path.join(tmp, "cache")
        with open(src, "w") as f:
            f.write('#include "lib/bitops.h"\n'
                    'enum class UopClass : unsigned char { IntAlu };\n')

        cold, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(not hit, "first build is a miss")
        check(os.listdir(cache), "miss populated the cache directory")

        warm, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(hit, "unchanged reload is a hit")
        check(warm.to_data() == cold.to_data(),
              "cached facts identical to the cold build")

        with open(src, "a") as f:
            f.write('#include "sys/machine.h"\n')
        edited, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(not hit, "edited file is re-analyzed (hash changed)")
        check(any(inc == "sys/machine.h" for _, inc in edited.includes),
              "re-built index reflects the edit")

        rewarm, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(hit, "re-analyzed entry is cached again")
        check(rewarm.to_data() == edited.to_data(),
              "round-tripped facts identical after the edit")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return failures


def main():
    failed = run_self_test()
    failed += run_cache_test()
    if failed:
        print("test_lint_fixtures: %d failure(s)" % failed)
        return 1
    print("test_lint_fixtures: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
