"""CTest entry for the simlint golden fixtures and the index cache.

Part 1 runs the driver's --self-test: every rule must ship at least
one bad and one good fixture, each bad fixture must trip exactly its
own rule, and each good fixture must be clean under ALL rules.

Part 2 proves the pass-1 cache is correct, not just fast:

  - a cold load_or_build() populates the cache (miss),
  - an identical reload is served from the cache (hit) with facts
    equal to the cold build,
  - editing the file invalidates the entry (content hash changes) and
    the re-built index reflects the edit,
  - changing the analyzer fingerprint (the `env` cache-key component;
    in real runs, editing any rule/lexer/config file under
    tools/simlint/) invalidates the entry even when the source file
    itself is untouched — the staleness bug where tweaking a rule
    served yesterday's verdicts,
  - the v3 call-graph facts (funcs/ns_vars/unordered_decls/iter_sites)
    survive a cache round-trip with their tuple shapes intact, so the
    interprocedural rules behave identically on warm and cold runs.
"""

import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

from simlint import index as index_mod  # noqa: E402


def run_self_test():
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "scripts", "simlint.py"),
         "--self-test"],
        cwd=REPO_ROOT, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    sys.stdout.write(proc.stdout)
    if proc.returncode != 0:
        print("FAIL: simlint --self-test exited %d" % proc.returncode)
        return 1
    return 0


def run_cache_test():
    failures = 0

    def check(cond, what):
        nonlocal failures
        print("%s cache: %s" % ("ok  " if cond else "FAIL", what))
        if not cond:
            failures += 1

    tmp = tempfile.mkdtemp(prefix="simlint-cache-test-")
    try:
        src = os.path.join(tmp, "widget.cc")
        cache = os.path.join(tmp, "cache")
        with open(src, "w") as f:
            f.write('#include "lib/bitops.h"\n'
                    'enum class UopClass : unsigned char { IntAlu };\n')

        cold, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(not hit, "first build is a miss")
        check(os.listdir(cache), "miss populated the cache directory")

        warm, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(hit, "unchanged reload is a hit")
        check(warm.to_data() == cold.to_data(),
              "cached facts identical to the cold build")

        with open(src, "a") as f:
            f.write('#include "sys/machine.h"\n')
        edited, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(not hit, "edited file is re-analyzed (hash changed)")
        check(any(inc == "sys/machine.h" for _, inc in edited.includes),
              "re-built index reflects the edit")

        rewarm, hit = index_mod.load_or_build(src, "widget.cc", cache)
        check(hit, "re-analyzed entry is cached again")
        check(rewarm.to_data() == edited.to_data(),
              "round-tripped facts identical after the edit")

        # Analyzer-fingerprint staleness: the same source content under
        # a different `env` must be a miss (editing a rule file changes
        # toolchain_fingerprint() in real runs).
        _, hit = index_mod.load_or_build(src, "widget.cc", cache,
                                         env="analyzer-rev-A")
        check(not hit, "new analyzer fingerprint invalidates the entry")
        _, hit = index_mod.load_or_build(src, "widget.cc", cache,
                                         env="analyzer-rev-A")
        check(hit, "same fingerprint hits again")
        _, hit = index_mod.load_or_build(src, "widget.cc", cache,
                                         env="analyzer-rev-B")
        check(not hit, "edited-rule fingerprint is a miss despite "
              "unchanged source")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return failures


def run_callgraph_cache_test():
    """The v3 facts must be identical (values AND container shapes)
    across a cache round-trip: the taint rule indexes funcs by span
    and set-intersects iter_sites id lists, so a list-vs-tuple drift
    between cold and warm runs would silently change verdicts."""
    failures = 0

    def check(cond, what):
        nonlocal failures
        print("%s callgraph-cache: %s" % ("ok  " if cond else "FAIL",
                                          what))
        if not cond:
            failures += 1

    tmp = tempfile.mkdtemp(prefix="simlint-callgraph-test-")
    try:
        src = os.path.join(tmp, "graph.cc")
        cache = os.path.join(tmp, "cache")
        with open(src, "w") as f:
            f.write(
                "#include <unordered_map>\n"
                "namespace ptl {\n"
                "int shard_epoch = 0;\n"
                "std::unordered_map<int, int> table;\n"
                "int helper() {\n"
                "    static int calls = 0;\n"
                "    int sum = 0;\n"
                "    for (const auto &kv : table)\n"
                "        sum += kv.second;\n"
                "    return sum + calls;\n"
                "}\n"
                "int entry() { return helper(); }\n"
                "}\n")

        cold, hit = index_mod.load_or_build(src, "graph.cc", cache,
                                            env="cg")
        check(not hit, "cold build is a miss")
        quals = [fn["qual"] for fn in cold.funcs]
        check("helper" in quals and "entry" in quals,
              "both functions are call-graph nodes")
        entry = next(fn for fn in cold.funcs if fn["qual"] == "entry")
        check(any(callee == "helper" for _ln, callee in entry["calls"]),
              "entry -> helper call edge recorded")
        helper = next(fn for fn in cold.funcs if fn["qual"] == "helper")
        check(any(name == "calls"
                  for _ln, name, _t in helper["statics"]),
              "function-local static recorded")
        check(any(name == "table" for _ln, name in cold.unordered_decls),
              "unordered declaration recorded")
        check(any("table" in ids for _ln, ids in cold.iter_sites),
              "iteration site records the range-for subject")

        warm, hit = index_mod.load_or_build(src, "graph.cc", cache,
                                            env="cg")
        check(hit, "reload is a hit")
        check(warm.to_data() == cold.to_data(),
              "warm facts identical to cold facts")
        check(warm.funcs == cold.funcs,
              "call-graph nodes identical after round-trip")
        check(warm.ns_vars == cold.ns_vars
              and type(warm.ns_vars[0]) is type(cold.ns_vars[0]),
              "ns_vars values and shapes identical after round-trip")
        check(warm.unordered_decls == cold.unordered_decls
              and warm.iter_sites == cold.iter_sites,
              "sink tables identical after round-trip")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return failures


def main():
    failed = run_self_test()
    failed += run_cache_test()
    failed += run_callgraph_cache_test()
    if failed:
        print("test_lint_fixtures: %d failure(s)" % failed)
        return 1
    print("test_lint_fixtures: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
