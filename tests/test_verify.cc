/**
 * Tests for the correctness-tooling layer (src/verify): prove that the
 * invariant checker detects deliberately injected corruption in every
 * structure family it audits (ROB, LSQ, PRF, issue queues/scoreboard,
 * MESI directory), and that the lockstep commit checker panics on an
 * architectural divergence from the functional reference.
 */

#include <gtest/gtest.h>

#include "core/ooo/ooocore.h"
#include "guest_harness.h"
#include "mem/coherence.h"
#include "verify/verify.h"

namespace ptl {
namespace {

SimConfig
verifyConfig()
{
    SimConfig cfg = SimConfig::preset("default");
    cfg.core = "ooo";
    return cfg;
}

/** A store/load churn loop that keeps the ROB, both LSQ halves and the
 *  issue queues populated for thousands of cycles. */
void
churnProgram(Assembler &a)
{
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 0);
    Label top = a.label();
    a.mov(R::rax, R::rcx);
    a.imul(R::rax, R::rax, 2654435761);
    a.mov(Mem::idx(R::rbx, R::rcx, 8), R::rax);
    a.and_(R::rax, 255);
    a.add(R::rdx, Mem::idx(R::rbx, R::rax, 8));
    a.inc(R::rcx);
    a.cmp(R::rcx, 2048);
    a.jcc(COND_ne, top);
    a.hlt();
}

/** Harness: an OoO core mid-flight through the churn program. */
class VerifyRig
{
  public:
    explicit VerifyRig(SimConfig cfg = verifyConfig()) : runner(cfg)
    {
        Assembler a(CoreRunner::CODE_BASE);
        churnProgram(a);
        runner.load(a);
        runner.start();
    }

    OooCore &core() { return static_cast<OooCore &>(*runner.core); }

    /**
     * Cycle the pipeline, offering `corrupt` a chance after each cycle
     * until it reports it found state to damage. Returns false if the
     * program drained without the corruption ever applying.
     */
    template <typename Fn>
    bool
    corruptMidFlight(Fn &&corrupt, U64 max_cycles = 200000)
    {
        for (; now.raw() < max_cycles && !runner.core->allIdle();
             ++now) {
            runner.core->cycle(now);
            if (corrupt(core()))
                return true;
        }
        return false;
    }

    /** Audit in Count mode and return the violation count. */
    int
    audit(InvariantChecker &chk)
    {
        return chk.checkCore(core(), now);
    }

    CoreRunner runner;
    SimCycle now;
};

TEST(VerifyTest, CleanPipelinePassesEveryCycleAudit)
{
    VerifyRig rig;
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    int violations = 0;
    for (; rig.now.raw() < 200000 && !rig.runner.core->allIdle();
         ++rig.now) {
        rig.runner.core->cycle(rig.now);
        if (rig.now.raw() % 16 == 0)
            violations += rig.audit(chk);
    }
    EXPECT_TRUE(rig.runner.core->allIdle()) << "program never drained";
    EXPECT_EQ(violations, 0);
    EXPECT_GT(chk.counters().checks.value(), 0u);
    EXPECT_EQ(chk.counters().violations.value(), 0u);
}

TEST(VerifyTest, DetectsRobCountCorruption)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptRobCount(c, 0);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().rob_count.value(), 0u);
}

TEST(VerifyTest, DetectsRobAgeOrderCorruption)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptRobOrder(c, 0);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().rob_order.value(), 0u);
}

TEST(VerifyTest, DetectsLsqAgeCorruption)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptLsqAge(c, 0);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().lsq_age.value()
                  + chk.counters().lsq_state.value(),
              0u);
}

TEST(VerifyTest, DetectsPhysicalRegisterLeak)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptPrfLeak(c);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().prf_leak.value(), 0u);
}

TEST(VerifyTest, DetectsPhysicalRegisterDoubleFree)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptPrfDoubleFree(c);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().prf_double_free.value(), 0u);
}

TEST(VerifyTest, DetectsIssueQueueScoreboardBreak)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptIqReady(c);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Count);
    EXPECT_GT(rig.audit(chk), 0);
    EXPECT_GT(chk.counters().iq_state.value(), 0u);
}

TEST(VerifyTest, DetectsIllegalMesiDirectoryState)
{
    StatsTree stats;
    CoherenceController coherence(CoherenceKind::Moesi, 10, stats);

    // A legal directory audits clean.
    InvariantChecker chk(stats, "verify/", InvariantChecker::Action::Count);
    coherence.corruptStateForTest(0, GuestPhys(0x1000), LineState::Modified);
    EXPECT_EQ(chk.checkCoherence(coherence, SimCycle(0)), 0);

    // Two Modified holders of one line is never legal.
    coherence.corruptStateForTest(1, GuestPhys(0x1000), LineState::Modified);
    EXPECT_GT(chk.checkCoherence(coherence, SimCycle(0)), 0);
    EXPECT_GT(chk.counters().mesi.value(), 0u);

    // Exclusive coexisting with a sharer is never legal either.
    CoherenceController c2(CoherenceKind::Moesi, 10, stats);
    c2.corruptStateForTest(0, GuestPhys(0x2000), LineState::Exclusive);
    c2.corruptStateForTest(1, GuestPhys(0x2000), LineState::Shared);
    EXPECT_GT(chk.checkCoherence(c2, SimCycle(0)), 0);
}

TEST(VerifyTest, PanicModeDiesOnCorruption)
{
    VerifyRig rig;
    ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
        return VerifyTestHook::corruptPrfDoubleFree(c);
    }));
    InvariantChecker chk(rig.runner.stats, "verify/",
                         InvariantChecker::Action::Panic);
    EXPECT_DEATH(chk.checkCore(rig.core(), rig.now), "double.free|free list");
}

TEST(VerifyTest, LockstepCatchesShadowRegisterDivergence)
{
    SimConfig cfg = verifyConfig();
    cfg.commit_checker = true;
    EXPECT_DEATH(
        {
            VerifyRig rig(cfg);
            // Flip one architectural register bit in the reference's
            // shadow context; the next commits must detect that the
            // pipeline and the reference no longer agree.
            ASSERT_TRUE(rig.corruptMidFlight([](OooCore &c) {
                return VerifyTestHook::skewShadowReg(c, 0, REG_rdx);
            }));
            for (int i = 0; i < 10000 && !rig.runner.core->allIdle(); i++)
                rig.runner.core->cycle(++rig.now);
        },
        "lockstep divergence");
}

}  // namespace
}  // namespace ptl
