/**
 * Full-system integration tests, parameterized over core models (the
 * sequential core and the out-of-order core with its commit checker
 * armed): the paravirtual kernel boots, runs user tasks, and exercises
 * syscalls, pipes, the scheduler, timer ticks, hlt idle accounting,
 * network latency and disk DMA.
 */

#include <gtest/gtest.h>

#include "kernel/guestkernel.h"
#include "kernel/guestlib.h"
#include "sys/machine.h"

namespace ptl {
namespace {

class KernelP : public ::testing::TestWithParam<const char *>
{
};

SimConfig
testConfig(const char *core = "seq")
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = core;
    cfg.commit_checker = true;
    cfg.core_freq_hz = 10'000'000;      // fast ticks for short tests
    cfg.timer_hz = 1000;                // 10k cycles per tick
    cfg.snapshot_interval = 100'000;
    cfg.guest_mem_bytes = 32 << 20;
    return cfg;
}

struct BootedMachine
{
    BootedMachine(const SimConfig &cfg,
                  void (*user_code)(Assembler &, GuestLib &))
        : machine(cfg), builder(machine.addressSpace(), machine.vcpu(0),
                                machine.timerPeriodCycles())
    {
        Assembler &ua = builder.userAsm();
        GuestLib lib(ua);
        Label entry = ua.newLabel();
        Label skip = ua.newLabel();
        ua.jmp(skip);           // jump over the library
        lib.emitRuntime();
        ua.bind(skip);
        ua.bind(entry);
        user_code(ua, lib);
        builder.setInitTask(ua.labelVa(entry), 0);
        builder.build();
        machine.finalizeCores();
    }

    U64
    readKdata(U64 offset)
    {
        Context kctx;
        kctx.cr3 = builder.taskCr3(0);
        kctx.kernel_mode = true;
        U64 v = 0;
        guestRead(machine.addressSpace(), kctx, GuestVirt(KDATA_VA + offset),
                  8, v);
        return v;
    }

    Machine machine;
    KernelBuilder builder;
};

TEST_P(KernelP, BootsAndPrintsToConsole)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        Label msg = a.newLabel();
        a.movLabel(R::rdi, msg);
        a.mov(R::rsi, 12);
        lib.syscall(GSYS_console);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
        a.bind(msg);
        a.dbs("hello world\n", 12);
    });
    Machine::RunResult r = bm.machine.run(50'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 0ULL);
    EXPECT_EQ(bm.machine.console().output(), "hello world\n");
}

TEST_P(KernelP, GetpidAndTime)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        lib.syscall(GSYS_getpid);
        a.mov(R::rbx, R::rax);          // pid of init = 0
        lib.syscall(GSYS_time_ns);
        a.test(R::rax, R::rax);         // time should be nonzero later
        a.mov(R::rdi, R::rbx);
        lib.syscall(GSYS_exit);         // exit code = pid (0)
    });
    Machine::RunResult r = bm.machine.run(50'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 0ULL);
}

TEST_P(KernelP, TimerTicksAdvanceJiffies)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        // Sleep 5 ticks, then exit.
        a.mov(R::rdi, 5);
        lib.syscall(GSYS_sleep);
        a.mov(R::rdi, 42);
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(200'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 42ULL);
    EXPECT_GE(bm.readKdata(KD_JIFFIES), 5ULL);
    EXPECT_GE(bm.readKdata(KD_TICKS_SEEN), 5ULL);
    // Sleeping accumulates idle cycles (Figure 2's idle fraction).
    EXPECT_GT(bm.machine.stats().get("external/cycles_in_mode/idle"),
              30'000ULL);
    EXPECT_GT(bm.machine.stats().get("external/cycles_in_mode/kernel"),
              0ULL);
    EXPECT_GT(bm.machine.stats().get("external/cycles_in_mode/user"),
              0ULL);
}

TEST_P(KernelP, SpawnAndPipePingPong)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        Label child = a.newLabel(), start = a.newLabel();
        a.jmp(start);

        // Child (arg in rdi): read 8 bytes from pipe 0, add 1, write
        // result to pipe 1, exit.
        a.bind(child);
        a.sub(R::rsp, 16);
        a.mov(R::rdi, 0);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_read_exact);
        a.mov(R::rax, Mem::at(R::rsp));
        a.inc(R::rax);
        a.mov(Mem::at(R::rsp), R::rax);
        a.mov(R::rdi, 1);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_write_all);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);

        // Init: spawn child, send 41, read back, exit with result.
        a.bind(start);
        a.movLabel(R::rdi, child);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
        a.sub(R::rsp, 16);
        a.movStoreImm32(Mem::at(R::rsp), 41);
        a.mov(R::rdi, 0);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_write_all);
        a.mov(R::rdi, 1);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_read_exact);
        a.mov(R::rdi, Mem::at(R::rsp));
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(200'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 42ULL);
    // Context switches reloaded CR3 at least twice.
    EXPECT_GE(bm.machine.stats().get("hypervisor/cr3_switches"), 2ULL);
}

TEST_P(KernelP, PipeBlockingLargeTransfer)
{
    // Transfer far more than the 4KB pipe capacity: both sides must
    // block and wake repeatedly.
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        constexpr U32 TOTAL = 64 * 1024;
        Label child = a.newLabel(), start = a.newLabel();
        a.jmp(start);

        // Child: write TOTAL bytes of a pattern into pipe 0.
        a.bind(child);
        a.movImm64(R::rdi, USER_DATA_VA);        // source buffer
        a.mov(R::rsi, 0xAB);
        a.mov(R::rdx, TOTAL);
        a.call(lib.fn_memset);
        a.mov(R::rdi, 0);
        a.movImm64(R::rsi, USER_DATA_VA);
        a.mov(R::rdx, TOTAL);
        a.call(lib.fn_write_all);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);

        // Init: spawn child, read TOTAL bytes, verify a sample.
        a.bind(start);
        a.movLabel(R::rdi, child);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
        a.mov(R::rdi, 0);
        a.movImm64(R::rsi, USER_DATA_VA + TOTAL);
        a.mov(R::rdx, TOTAL);
        a.call(lib.fn_read_exact);
        a.movImm64(R::rbx, USER_DATA_VA + TOTAL + TOTAL - 1);
        a.movzx8(R::rdi, Mem::at(R::rbx));       // last byte: 0xAB
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(2'000'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 0xABULL);
}

TEST_P(KernelP, NetworkLoopbackWithLatency)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        Label server = a.newLabel(), start = a.newLabel();
        a.jmp(start);

        // Server: recv 8 bytes on endpoint 1, double, send to ep 0.
        a.bind(server);
        a.sub(R::rsp, 16);
        a.mov(R::rdi, 1);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_net_recv_exact);
        a.mov(R::rax, Mem::at(R::rsp));
        a.add(R::rax, R::rax);
        a.mov(Mem::at(R::rsp), R::rax);
        a.mov(R::rdi, 0);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        lib.syscall(GSYS_net_send);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);

        // Client (init): spawn server, send 21 to ep 1, await reply.
        a.bind(start);
        a.movLabel(R::rdi, server);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
        a.sub(R::rsp, 16);
        a.movStoreImm32(Mem::at(R::rsp), 21);
        a.mov(R::rdi, 1);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        lib.syscall(GSYS_net_send);
        a.mov(R::rdi, 0);
        a.mov(R::rsi, R::rsp);
        a.mov(R::rdx, 8);
        a.call(lib.fn_net_recv_exact);
        a.mov(R::rdi, Mem::at(R::rsp));
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(500'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 42ULL);
    EXPECT_GE(bm.machine.stats().get("net/packets"), 2ULL);
    // Network latency put the domain to sleep while waiting.
    EXPECT_GT(bm.machine.stats().get("external/cycles_in_mode/idle"),
              0ULL);
}

TEST_P(KernelP, DiskReadDmaIntoGuest)
{
    SimConfig cfg = testConfig(GetParam());
    BootedMachine bm(cfg, [](Assembler &a, GuestLib &lib) {
            // Read 4 sectors (2 KB) from sector 3 into USER_DATA.
            a.mov(R::rdi, 3);
            a.mov(R::rsi, 4);
            a.movImm64(R::rdx, USER_DATA_VA);
            lib.syscall(GSYS_disk_read);
            // Exit with the first byte of the data.
            a.movImm64(R::rbx, USER_DATA_VA);
            a.movzx8(R::rdi, Mem::at(R::rbx));
            lib.syscall(GSYS_exit);
        });
    // Build a disk image: sector 3 starts with 0x77.
    std::vector<U8> image(64 * DISK_SECTOR_BYTES, 0);
    image[3 * DISK_SECTOR_BYTES] = 0x77;
    bm.machine.disk().setImage(std::move(image));

    Machine::RunResult r = bm.machine.run(500'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 0x77ULL);
    EXPECT_EQ(bm.machine.stats().get("disk/reads"), 1ULL);
    EXPECT_EQ(bm.machine.stats().get("disk/sectors"), 4ULL);
}

TEST_P(KernelP, YieldBetweenCpuBoundTasks)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        Label worker = a.newLabel(), start = a.newLabel();
        a.jmp(start);

        // Worker: increment a shared counter 100 times, yielding each
        // iteration, then exit.
        a.bind(worker);
        a.mov(R::rbx, 100);
        Label wloop = a.label();
        a.movImm64(R::rax, USER_DATA_VA);
        a.lockInc(Mem::at(R::rax));
        lib.syscall(GSYS_yield);
        a.dec(R::rbx);
        a.jcc(COND_ne, wloop);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);

        // Init: spawn two workers, poll the counter until it reaches
        // 200, then exit with its value.
        a.bind(start);
        a.movLabel(R::rdi, worker);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
        a.movLabel(R::rdi, worker);
        a.mov(R::rsi, 0);
        lib.syscall(GSYS_spawn);
        Label poll = a.label();
        lib.syscall(GSYS_yield);
        a.movImm64(R::rax, USER_DATA_VA);
        a.mov(R::rcx, Mem::at(R::rax));
        a.cmp(R::rcx, 200);
        a.jcc(COND_ne, poll);
        a.mov(R::rdi, R::rcx);
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(2'000'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 200ULL);
}

TEST_P(KernelP, SnapshotsTakenAtInterval)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        a.mov(R::rdi, 30);
        lib.syscall(GSYS_sleep);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(1'000'000'000);
    EXPECT_TRUE(r.shutdown);
    // ~30 ticks * 10k cycles = 300k cycles; interval is 100k.
    EXPECT_GE(bm.machine.stats().snapshotCount(), 3u);
}

TEST_P(KernelP, PtlcallMarkersFromUserMode)
{
    BootedMachine bm(testConfig(GetParam()), [](Assembler &a, GuestLib &lib) {
        a.mov(R::rax, (U64)PTLCALL_MARKER);
        a.mov(R::rdi, 7);
        a.ptlcall();
        a.mov(R::rax, (U64)PTLCALL_MARKER);
        a.mov(R::rdi, 8);
        a.ptlcall();
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(50'000'000);
    EXPECT_TRUE(r.shutdown);
    ASSERT_EQ(bm.machine.hypervisor().markers().size(), 2u);
    EXPECT_EQ(bm.machine.hypervisor().markers()[0].id, 7ULL);
    EXPECT_EQ(bm.machine.hypervisor().markers()[1].id, 8ULL);
}

INSTANTIATE_TEST_SUITE_P(Cores, KernelP, ::testing::Values("seq", "ooo"));

}  // namespace
}  // namespace ptl
