/**
 * @file
 * Shared test harness: assembles guest code, builds a page-table-backed
 * address space, and runs it on a FunctionalEngine with a stub system
 * interface. Used by the decode/exec/core test suites.
 */

#ifndef PTLSIM_TESTS_GUEST_HARNESS_H_
#define PTLSIM_TESTS_GUEST_HARNESS_H_

#include <cstdlib>
#include <memory>
#include <vector>

#include "core/seqcore.h"
#include "lib/logging.h"
#include "verify/verify.h"
#include "xasm/assembler.h"

namespace ptl {

/** Minimal SystemInterface for bare-metal style tests. */
class StubSystem : public SystemInterface
{
  public:
    explicit StubSystem(BasicBlockCache &bbs) : bbcache(&bbs) {}

    U64
    hypercall(Context &, U64 nr, U64 a1, U64 a2, U64 a3) override
    {
        hypercalls.push_back({nr, a1, a2, a3});
        return hypercall_result;
    }

    U64 readTsc(const Context &) override { return tsc += 100; }

    void vcpuBlock(Context &ctx) override { ctx.running = false; }

    U64
    ptlcall(Context &, U64 op, U64, U64) override
    {
        ptlcalls.push_back(op);
        return 0;
    }

    void notifyCodeWrite(Pfn mfn) override { bbcache->invalidateMfn(mfn); }

    bool isCodeMfn(Pfn mfn) const override { return bbcache->isCodeMfn(mfn); }

    struct Call { U64 nr, a1, a2, a3; };
    std::vector<Call> hypercalls;
    std::vector<U64> ptlcalls;
    U64 hypercall_result = 0;
    U64 tsc = 0;

  private:
    BasicBlockCache *bbcache;
};

/** Assemble-and-run fixture. */
class GuestRunner
{
  public:
    static constexpr U64 CODE_BASE = 0x400000;
    static constexpr U64 DATA_BASE = 0x600000;
    static constexpr U64 STACK_TOP = 0x800000;

    GuestRunner()
        : mem(32 << 20, 7, true), aspace(mem),
          bbcache(stats.counter("bbcache/hits"),
                  stats.counter("bbcache/misses"),
                  stats.counter("bbcache/smc_invalidations")),
          sys(bbcache)
    {
        aspace.attachStats(stats);
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(CODE_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US);
        aspace.mapRange(cr3, GuestVirt(DATA_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        aspace.mapRange(cr3, GuestVirt(STACK_TOP - 64 * PAGE_SIZE),
                        64 * PAGE_SIZE, Pte::RW | Pte::US | Pte::NX);
        ctx.cr3 = cr3;
        ctx.kernel_mode = true;   // bare-metal style by default
        ctx.regs[REG_rsp] = STACK_TOP - 64;
        engine = std::make_unique<FunctionalEngine>(ctx, aspace, bbcache,
                                                    sys, stats, "");
    }

    /** Write an assembled image at its base VA and point RIP at it. */
    void
    load(Assembler &assembler)
    {
        std::vector<U8> image = assembler.finalize();
        writeGuest(assembler.baseVa(), image.data(), image.size());
        ctx.rip = GuestVirt(assembler.baseVa());
    }

    void
    writeGuest(U64 va, const void *data, size_t n)
    {
        GuestCopy g = guestCopyOut(aspace, ctx, GuestVirt(va), data, n);
        ptl_assert(g.ok());
    }

    U64
    readGuest(U64 va, unsigned bytes)
    {
        U64 v = 0;
        GuestAccess a = guestRead(aspace, ctx, GuestVirt(va), bytes, v);
        ptl_assert(a.ok());
        return v;
    }

    /** Run until the VCPU blocks (hlt) or `max_insns` is exceeded. */
    int
    run(int max_insns = 100000)
    {
        int executed = 0;
        while (ctx.running && executed < max_insns) {
            FunctionalEngine::StepResult r =
                engine->stepInsn(SimCycle((U64)executed));
            executed += r.insns;
            if (r.idle)
                break;
        }
        ptl_assert(executed < max_insns);
        return executed;
    }

    U64 reg(R r) const { return ctx.regs[(int)r]; }

    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    BasicBlockCache bbcache;
    StubSystem sys;
    Context ctx;
    std::unique_ptr<FunctionalEngine> engine;
    Pfn cr3;
};

/** Bare-metal harness running programs on a registered core model
 *  (ooo/smt/seq) instead of the raw functional engine. */
class CoreRunner
{
  public:
    static constexpr U64 CODE_BASE = GuestRunner::CODE_BASE;
    static constexpr U64 DATA_BASE = GuestRunner::DATA_BASE;
    static constexpr U64 STACK_TOP = GuestRunner::STACK_TOP;

    explicit CoreRunner(const SimConfig &config, int vcpus = 1)
        : cfg(config), mem(32 << 20, 7, true), aspace(mem),
          bbcache(stats.counter("bbcache/hits"),
                  stats.counter("bbcache/misses"),
                  stats.counter("bbcache/smc_invalidations")),
          sys(bbcache), interlocks(stats)
    {
        aspace.attachStats(stats);
        // Mirror the Machine ctor: translation shadow-walks only when
        // verification is on.  GuestRunner keeps the always-on default.
        aspace.transCache().setShadowEnabled(
            cfg.verify || std::getenv("PTLSIM_VERIFY") != nullptr);
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(CODE_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US);
        aspace.mapRange(cr3, GuestVirt(DATA_BASE), 256 * PAGE_SIZE,
                        Pte::RW | Pte::US | Pte::NX);
        aspace.mapRange(cr3, GuestVirt(STACK_TOP - 256 * PAGE_SIZE),
                        256 * PAGE_SIZE, Pte::RW | Pte::US | Pte::NX);
        for (int i = 0; i < vcpus; i++) {
            contexts.push_back(std::make_unique<Context>());
            Context &ctx = *contexts.back();
            ctx.vcpu_id = i;
            ctx.cr3 = cr3;
            ctx.kernel_mode = true;
            ctx.regs[REG_rsp] = STACK_TOP - 64 - (U64)i * 0x10000;
        }
    }

    /** Load the image and point VCPU i at `entry` (0 = image base). */
    void
    load(Assembler &assembler, int vcpu = 0, U64 entry = 0)
    {
        if (!image_written) {
            image = assembler.finalize();
            GuestCopy g = guestCopyOut(aspace, *contexts[0],
                                       GuestVirt(assembler.baseVa()),
                                       image.data(), image.size());
            ptl_assert(g.ok());
            image_written = true;
        }
        contexts[vcpu]->rip = GuestVirt(entry ? entry : CODE_BASE);
    }

    /** Instantiate the core model (after all load() calls). */
    void
    start()
    {
        CoreBuildParams p;
        p.config = &cfg;
        for (auto &c : contexts)
            p.contexts.push_back(c.get());
        p.aspace = &aspace;
        p.bbcache = &bbcache;
        p.sys = &sys;
        p.stats = &stats;
        p.prefix = "core0/";
        p.interlocks = &interlocks;
        // Machine-level assembly in miniature: the harness owns the
        // hierarchy and hands the core the narrow handle.
        hierarchy = std::make_unique<MemoryHierarchy>(cfg, aspace, stats,
                                                      p.prefix);
        p.hierarchy = hierarchy.get();
        core = createCoreModel(cfg.core, p);
        core->attachAuditor(makeVerifyAuditor(cfg, stats, p.prefix));
    }

    /** Run until every VCPU blocks (hlt) or max_cycles pass. */
    U64
    run(U64 max_cycles = 3'000'000)
    {
        ptl_assert(core != nullptr);
        U64 c = 0;
        for (; c < max_cycles && !core->allIdle(); c++)
            core->cycle(SimCycle(c));
        ptl_assert(core->allIdle());
        return c;
    }

    U64 reg(R r, int vcpu = 0) const
    {
        return contexts[vcpu]->regs[(int)r];
    }

    U64
    readGuest(U64 va, unsigned bytes)
    {
        U64 v = 0;
        guestRead(aspace, *contexts[0], GuestVirt(va), bytes, v);
        return v;
    }

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    BasicBlockCache bbcache;
    StubSystem sys;
    InterlockController interlocks;
    std::vector<std::unique_ptr<Context>> contexts;
    std::unique_ptr<MemoryHierarchy> hierarchy;  ///< before core: destroyed after it
    std::unique_ptr<CoreModel> core;
    std::vector<U8> image;
    bool image_written = false;
    Pfn cr3;
};

}  // namespace ptl

#endif  // PTLSIM_TESTS_GUEST_HARNESS_H_
