/** Tests for the branch predictor family, BTB and return address stack. */

#include <gtest/gtest.h>

#include "branch/predictor.h"
#include "lib/rng.h"

namespace ptl {
namespace {

SimConfig
configFor(PredictorKind kind)
{
    SimConfig c = SimConfig::preset("default");
    c.predictor = kind;
    return c;
}

double
accuracyOn(BranchPredictor &bp, U64 rip,
           const std::vector<bool> &outcomes, int warmup)
{
    int correct = 0, counted = 0;
    for (size_t i = 0; i < outcomes.size(); i++) {
        BranchPrediction p = bp.predict(rip);
        if ((int)i >= warmup) {
            counted++;
            correct += (p.taken == outcomes[i]);
        }
        bp.resolve(rip, p, outcomes[i]);
    }
    return (double)correct / counted;
}

class PredictorFamily : public ::testing::TestWithParam<PredictorKind> {};

TEST_P(PredictorFamily, LearnsAlwaysTaken)
{
    StatsTree stats;
    BranchPredictor bp(configFor(GetParam()), stats, "");
    std::vector<bool> outcomes(500, true);
    EXPECT_GT(accuracyOn(bp, 0x1000, outcomes, 10), 0.99);
}

TEST_P(PredictorFamily, LearnsAlwaysNotTaken)
{
    StatsTree stats;
    BranchPredictor bp(configFor(GetParam()), stats, "");
    std::vector<bool> outcomes(500, false);
    EXPECT_GT(accuracyOn(bp, 0x1000, outcomes, 10), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Kinds, PredictorFamily,
                         ::testing::Values(PredictorKind::Bimodal,
                                           PredictorKind::Gshare,
                                           PredictorKind::Hybrid));

TEST(Predictor, GshareLearnsAlternatingPattern)
{
    // T,N,T,N... defeats bimodal but is trivial for global history.
    StatsTree s1, s2;
    BranchPredictor gshare(configFor(PredictorKind::Gshare), s1, "");
    BranchPredictor bimodal(configFor(PredictorKind::Bimodal), s2, "");
    std::vector<bool> outcomes;
    for (int i = 0; i < 1000; i++)
        outcomes.push_back(i % 2 == 0);
    EXPECT_GT(accuracyOn(gshare, 0x2000, outcomes, 100), 0.95);
    EXPECT_LT(accuracyOn(bimodal, 0x2000, outcomes, 100), 0.7);
}

TEST(Predictor, HybridTracksBestComponent)
{
    // Pattern solvable by gshare only; hybrid should converge near it.
    StatsTree s;
    BranchPredictor hybrid(configFor(PredictorKind::Hybrid), s, "");
    std::vector<bool> outcomes;
    for (int i = 0; i < 2000; i++)
        outcomes.push_back((i % 4) < 2);  // TTNN repeating
    EXPECT_GT(accuracyOn(hybrid, 0x3000, outcomes, 200), 0.9);
}

TEST(Predictor, StaticKinds)
{
    StatsTree s1, s2;
    BranchPredictor taken(configFor(PredictorKind::Taken), s1, "");
    BranchPredictor nottaken(configFor(PredictorKind::NotTaken), s2, "");
    EXPECT_TRUE(taken.predict(0x10).taken);
    EXPECT_FALSE(nottaken.predict(0x10).taken);
}

TEST(Predictor, HistoryRepairAfterMispredict)
{
    StatsTree s;
    BranchPredictor bp(configFor(PredictorKind::Gshare), s, "");
    // Train a periodic pattern, then check that mispredict repair keeps
    // the predictor converging rather than polluting history forever.
    std::vector<bool> outcomes;
    Rng rng(3);
    for (int i = 0; i < 200; i++)
        outcomes.push_back(true);
    double acc = accuracyOn(bp, 0x4000, outcomes, 20);
    EXPECT_GT(acc, 0.95);
}

TEST(Predictor, BtbStoresTargets)
{
    StatsTree s;
    BranchPredictor bp(configFor(PredictorKind::Hybrid), s, "");
    EXPECT_EQ(bp.predictTarget(0x5000), 0ULL);
    bp.updateTarget(0x5000, 0x777000);
    EXPECT_EQ(bp.predictTarget(0x5000), 0x777000ULL);
    bp.updateTarget(0x5000, 0x888000);
    EXPECT_EQ(bp.predictTarget(0x5000), 0x888000ULL);
    EXPECT_GT(s.get("branchpred/btb_hits"), 0ULL);
}

TEST(Predictor, BtbCapacityEviction)
{
    SimConfig c = configFor(PredictorKind::Hybrid);
    c.btb_entries = 16;
    c.btb_ways = 4;
    StatsTree s;
    BranchPredictor bp(c, s, "");
    // 8 branches mapping to the same set (stride = sets*4 bytes).
    for (U64 i = 0; i < 8; i++)
        bp.updateTarget(0x1000 + i * 16, 0xAA00 + i);
    int present = 0;
    for (U64 i = 0; i < 8; i++)
        present += (bp.predictTarget(0x1000 + i * 16) != 0);
    EXPECT_EQ(present, 4);  // only the associativity survives
}

TEST(Predictor, RasPushPopNesting)
{
    StatsTree s;
    BranchPredictor bp(configFor(PredictorKind::Hybrid), s, "");
    bp.pushReturn(0x100);
    bp.pushReturn(0x200);
    bp.pushReturn(0x300);
    EXPECT_EQ(bp.popReturn(), 0x300ULL);
    EXPECT_EQ(bp.popReturn(), 0x200ULL);
    int snapshot = bp.rasTop();
    bp.pushReturn(0x400);
    bp.popReturn();
    bp.popReturn();
    bp.rasRestore(snapshot);
    EXPECT_EQ(bp.popReturn(), 0x100ULL);
    EXPECT_EQ(bp.popReturn(), 0ULL);  // empty
}

TEST(Predictor, RasWrapsAtCapacity)
{
    SimConfig c = configFor(PredictorKind::Hybrid);
    c.ras_entries = 4;
    StatsTree s;
    BranchPredictor bp(c, s, "");
    for (U64 i = 0; i < 6; i++)
        bp.pushReturn(0x1000 + i);
    // Deepest entries overwritten; the newest 4 are intact.
    EXPECT_EQ(bp.popReturn(), 0x1005ULL);
    EXPECT_EQ(bp.popReturn(), 0x1004ULL);
    EXPECT_EQ(bp.popReturn(), 0x1003ULL);
    EXPECT_EQ(bp.popReturn(), 0x1002ULL);
}

TEST(Predictor, ResetClearsLearnedState)
{
    StatsTree s;
    BranchPredictor bp(configFor(PredictorKind::Bimodal), s, "");
    std::vector<bool> taken(100, true);
    accuracyOn(bp, 0x9000, taken, 0);
    bp.reset();
    // Counters back to weakly-not-taken.
    EXPECT_FALSE(bp.predict(0x9000).taken);
}

}  // namespace
}  // namespace ptl
