/**
 * Tests for the per-core memory hierarchy: cache timing, MSHRs, bank
 * conflicts, TLB + hardware page-walk timing, the K8 reference machine's
 * L2 TLB / PDE cache / prefetcher, and MOESI vs. instant coherence.
 */

#include <gtest/gtest.h>

#include <memory>

#include "lib/rng.h"
#include "mem/hierarchy.h"

namespace ptl {
namespace {

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest()
        : cfg(SimConfig::preset("k8")), mem(16 << 20, 5, true),
          aspace(mem)
    {
        cfg.guest_mem_bytes = 16 << 20;
        hier = std::make_unique<MemoryHierarchy>(cfg, aspace, stats, "c0/");
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(VA_BASE), 1 << 20, Pte::RW | Pte::US);
    }

    static constexpr U64 VA_BASE = 0x400000;

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    std::unique_ptr<MemoryHierarchy> hier;
    Pfn cr3;
};

TEST_F(HierarchyTest, ColdMissThenHit)
{
    MemResult miss = hier->dataAccess(GuestPhys(0x10000), false, SimCycle(100));
    EXPECT_FALSE(miss.l1_hit);
    // L1 latency + L2 latency + memory latency.
    EXPECT_EQ(miss.latency, cycles((U64)(cfg.l1d.latency + cfg.l2.latency
                                + cfg.mem_latency)));
    MemResult hit = hier->dataAccess(GuestPhys(0x10000), false, SimCycle(400));
    EXPECT_TRUE(hit.l1_hit);
    EXPECT_EQ(hit.latency, cycles((U64)cfg.l1d.latency));
    EXPECT_EQ(stats.get("c0/dcache/accesses"), 2ULL);
    EXPECT_EQ(stats.get("c0/dcache/misses"), 1ULL);
    EXPECT_EQ(stats.get("c0/mem/accesses"), 1ULL);
}

TEST_F(HierarchyTest, L2HitAfterL1Eviction)
{
    // Fill one L1 set past its associativity; L2 (16-way) keeps all.
    // L1: 64KB 2-way, 512 sets -> same-set stride = 512*64 = 32KB.
    U64 base = 0x000000;
    for (int i = 0; i < 3; i++)
        hier->dataAccess(GuestPhys(base + (U64)i * (512 * 64)), false, SimCycle(10 * i));
    // First line was evicted from L1 but still sits in L2.
    MemResult r = hier->dataAccess(GuestPhys(base), false, SimCycle(1000));
    EXPECT_FALSE(r.l1_hit);
    EXPECT_EQ(r.latency, cycles((U64)(cfg.l1d.latency + cfg.l2.latency)));
    EXPECT_EQ(stats.get("c0/mem/accesses"), 3ULL);
}

TEST_F(HierarchyTest, MshrMergesSameLine)
{
    MemResult first = hier->dataAccess(GuestPhys(0x20000), false, SimCycle(50));
    // Another access to the same line while the miss is in flight
    // merges into the MSHR instead of issuing a second memory access.
    MemResult second = hier->dataAccess(GuestPhys(0x20008), false, SimCycle(52));
    EXPECT_EQ(second.latency, first.latency - cycles(2));
    EXPECT_EQ(stats.get("c0/mem/accesses"), 1ULL);
}

TEST_F(HierarchyTest, MshrFullForcesReplay)
{
    // K8 preset has 8 MSHRs; issue 8 distinct-line misses in one cycle
    // (addresses offset so each lands in a different L1D bank).
    for (int i = 0; i < 8; i++) {
        MemResult r =
            hier->dataAccess(GuestPhys(0x40000 + (U64)i * 64 + (U64)i * 8),
                             false, SimCycle(7));
        EXPECT_FALSE(r.mshr_full) << i;
    }
    MemResult r9 = hier->dataAccess(GuestPhys(0x80000), false, SimCycle(8));
    EXPECT_TRUE(r9.mshr_full);
    EXPECT_EQ(stats.get("c0/dcache/mshr_full"), 1ULL);
    // After the misses drain, new misses are accepted again.
    MemResult later = hier->dataAccess(GuestPhys(0x80000), false, SimCycle(10000));
    EXPECT_FALSE(later.mshr_full);
}

TEST_F(HierarchyTest, BankConflictSameCycle)
{
    // Warm two lines so both accesses would hit.
    hier->dataAccess(GuestPhys(0x1000), false, SimCycle(1));
    hier->dataAccess(GuestPhys(0x2000), false, SimCycle(2));
    // Same cycle, same bank (offset 0x8 within line -> bank 1 for both).
    MemResult a = hier->dataAccess(GuestPhys(0x1008), false, SimCycle(500));
    MemResult b = hier->dataAccess(GuestPhys(0x2008), false, SimCycle(500));
    EXPECT_FALSE(a.bank_conflict);
    EXPECT_TRUE(b.bank_conflict);
    EXPECT_EQ(stats.get("c0/dcache/bank_conflicts"), 1ULL);
    // Different banks in the same cycle: no conflict.
    MemResult c = hier->dataAccess(GuestPhys(0x2010), false, SimCycle(500));
    EXPECT_FALSE(c.bank_conflict);
    // Next cycle the bank frees up.
    MemResult d = hier->dataAccess(GuestPhys(0x2008), false, SimCycle(501));
    EXPECT_FALSE(d.bank_conflict);
}

TEST_F(HierarchyTest, TranslateHitAfterWalk)
{
    TranslateResult t1 = hier->translateData(cr3, GuestVirt(VA_BASE + 0x123), false,
                                             true, SimCycle(10));
    EXPECT_FALSE(t1.tlb_hit);
    EXPECT_EQ(t1.fault, GuestFault::None);
    EXPECT_GT(t1.latency, cycles(0));
    EXPECT_EQ(stats.get("c0/walker/walks"), 1ULL);
    EXPECT_EQ(stats.get("c0/walker/loads"), 4ULL);
    // The machine-physical page comes from the page tables.
    PageWalk w = aspace.walk(cr3, GuestVirt(VA_BASE));
    EXPECT_EQ(t1.paddr.raw(), (w.mfn.raw() << PAGE_SHIFT) | 0x123);

    TranslateResult t2 = hier->translateData(cr3, GuestVirt(VA_BASE + 0x456), false,
                                             true, SimCycle(500));
    EXPECT_TRUE(t2.tlb_hit);
    EXPECT_EQ(t2.latency, cycles(0));
}

TEST_F(HierarchyTest, StoreToCleanPageRewalksForDirtyBit)
{
    // Load first: TLB entry installed with dirty=false.
    hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(10));
    EXPECT_EQ(stats.get("c0/walker/walks"), 1ULL);
    // First store: must re-walk to set the D bit.
    TranslateResult w = hier->translateData(cr3, GuestVirt(VA_BASE), true, true, SimCycle(20));
    EXPECT_EQ(w.fault, GuestFault::None);
    EXPECT_EQ(stats.get("c0/walker/walks"), 2ULL);
    // D bit now set in the leaf PTE.
    PageWalk pw = aspace.walk(cr3, GuestVirt(VA_BASE));
    EXPECT_TRUE(mem.read(pw.pte_addr[3], 8) & Pte::D);
    // Subsequent stores hit.
    TranslateResult w2 = hier->translateData(cr3, GuestVirt(VA_BASE), true, true, SimCycle(30));
    EXPECT_TRUE(w2.tlb_hit);
    EXPECT_EQ(stats.get("c0/walker/walks"), 2ULL);
}

TEST_F(HierarchyTest, TranslationFaults)
{
    TranslateResult unmapped =
        hier->translateData(cr3, GuestVirt(0x9000000), false, true, SimCycle(10));
    EXPECT_EQ(unmapped.fault, GuestFault::PageFaultRead);

    // Kernel-only page: user access faults.
    aspace.map(cr3, GuestVirt(0xA00000), mem.allocFrame(), Pte::RW);
    TranslateResult kpage =
        hier->translateData(cr3, GuestVirt(0xA00000), false, true, SimCycle(20));
    EXPECT_EQ(kpage.fault, GuestFault::PageFaultRead);
    TranslateResult kopage =
        hier->translateData(cr3, GuestVirt(0xA00000), false, false, SimCycle(30));
    EXPECT_EQ(kopage.fault, GuestFault::None);

    // NX page: fetch faults, read succeeds.
    aspace.map(cr3, GuestVirt(0xB00000), mem.allocFrame(), Pte::RW | Pte::US | Pte::NX);
    EXPECT_EQ(hier->translateFetch(cr3, GuestVirt(0xB00000), true, SimCycle(40)).fault,
              GuestFault::PageFaultFetch);
    EXPECT_EQ(hier->translateData(cr3, GuestVirt(0xB00000), false, true, SimCycle(50)).fault,
              GuestFault::None);
}

TEST_F(HierarchyTest, CapacityMissesEvictLruTlb)
{
    // 32-entry DTLB: touching 33 pages evicts the first.
    for (int i = 0; i < 33; i++)
        hier->translateData(cr3, GuestVirt(VA_BASE + (U64)i * PAGE_SIZE), false, true,
                            SimCycle(10 * i));
    U64 walks_before = stats.get("c0/walker/walks");
    hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(10000));
    EXPECT_EQ(stats.get("c0/walker/walks"), walks_before + 1);
}

TEST_F(HierarchyTest, FlushTlbsForcesRewalk)
{
    hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(10));
    hier->flushTlbs();
    TranslateResult t = hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(20));
    EXPECT_FALSE(t.tlb_hit);
    EXPECT_EQ(stats.get("c0/walker/walks"), 2ULL);
}

TEST_F(HierarchyTest, WalkLoadsHitInDataCache)
{
    hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(10));
    U64 misses_first = stats.get("c0/dcache/misses");
    EXPECT_GT(misses_first, 0ULL);  // cold page-table lines missed
    hier->flushTlbs();
    // Re-walk after the fills land: PTE lines are cached, walk is cheap.
    TranslateResult t = hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(2000));
    EXPECT_EQ(stats.get("c0/dcache/misses"), misses_first);
    EXPECT_LE(t.latency, cycles((U64)(4 * cfg.l1d.latency)));
}

TEST_F(HierarchyTest, DirtyEvictionWritesBack)
{
    // Dirty a line, then stream enough lines through its L2 set to
    // evict it: the victim must count a writeback + memory access.
    hier->dataAccess(GuestPhys(0x0), true, SimCycle(10));
    U64 mem_before = stats.get("c0/mem/accesses");
    // L2: 1MB 16-way, 1024 sets -> same-set stride = 1024*64 = 64KB.
    for (int i = 1; i <= 17; i++)
        hier->dataAccess(GuestPhys((U64)i * 64 * 1024), false, SimCycle(100 * i));
    EXPECT_GT(stats.get("c0/mem/writebacks"), 0ULL);
    EXPECT_GT(stats.get("c0/mem/accesses"),
              mem_before + 16ULL);  // 17 fills + >=1 writeback
}

TEST_F(HierarchyTest, TlbCachesDirtyBitFromPte)
{
    // Store once (sets PTE.D). After a full TLB flush, a read
    // re-inserts the entry; a following store must NOT re-walk,
    // because the walk captured the already-set D bit.
    hier->translateData(cr3, GuestVirt(VA_BASE), true, true, SimCycle(10));
    EXPECT_EQ(stats.get("c0/walker/walks"), 1ULL);
    hier->flushTlbs();
    hier->translateData(cr3, GuestVirt(VA_BASE), false, true, SimCycle(20));  // read: walk 2
    EXPECT_EQ(stats.get("c0/walker/walks"), 2ULL);
    TranslateResult w = hier->translateData(cr3, GuestVirt(VA_BASE), true, true, SimCycle(30));
    EXPECT_TRUE(w.tlb_hit);
    EXPECT_EQ(stats.get("c0/walker/walks"), 2ULL);  // no dirty re-walk
}

TEST(K8NativeReference, L2TlbAbsorbsCapacityMisses)
{
    SimConfig cfg = SimConfig::preset("k8-native");
    PhysMem mem(32 << 20, 5, true);
    AddressSpace aspace(mem);
    StatsTree stats;
    MemoryHierarchy hier(cfg, aspace, stats, "c0/");
    Pfn cr3 = aspace.createRoot();
    aspace.mapRange(cr3, GuestVirt(0x400000), 4 << 20, Pte::RW | Pte::US);

    // Touch 256 pages twice: far beyond the 32-entry L1 TLB but well
    // within the 1024-entry L2 TLB, so round two never walks.
    for (int round = 0; round < 2; round++) {
        for (int i = 0; i < 256; i++) {
            hier.translateData(cr3, GuestVirt(0x400000 + (U64)i * PAGE_SIZE), false,
                               true, SimCycle(1000 * round + i));
        }
    }
    U64 walks = stats.get("c0/walker/walks");
    EXPECT_EQ(walks, 256ULL);
    EXPECT_GT(stats.get("c0/dtlb/l2_hits"), 200ULL);
}

TEST(K8NativeReference, PrefetcherCutsSequentialMemoryTraffic)
{
    // The K8-style prefetcher streams into the L2: sequential demand
    // misses still count at L1 but stop paying DRAM accesses.
    StatsTree s1, s2;
    PhysMem mem(16 << 20, 5, true);
    AddressSpace aspace(mem);
    SimConfig base = SimConfig::preset("k8");
    SimConfig pf = SimConfig::preset("k8-native");
    MemoryHierarchy plain(base, aspace, s1, "c0/");
    MemoryHierarchy fetcher(pf, aspace, s2, "c0/");
    for (U64 i = 0; i < 512; i++) {
        plain.dataAccess(GuestPhys(i * 64), false, SimCycle(i * 200));
        fetcher.dataAccess(GuestPhys(i * 64), false, SimCycle(i * 200));
    }
    EXPECT_EQ(s1.get("c0/mem/accesses"), 512ULL);
    EXPECT_LT(s2.get("c0/mem/accesses"), 20ULL);
    EXPECT_GT(s2.get("c0/dcache/prefetches"), 400ULL);
}

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest(CoherenceKind kind = CoherenceKind::Moesi)
        : cfg(SimConfig::preset("k8")), mem(16 << 20, 5, true),
          aspace(mem)
    {
        cfg.coherence = kind;
        ctrl = std::make_unique<CoherenceController>(
            kind, cfg.interconnect_latency, stats);
        for (int i = 0; i < 2; i++) {
            cores.push_back(std::make_unique<MemoryHierarchy>(
                cfg, aspace, stats, "c" + std::to_string(i) + "/",
                ctrl.get()));
        }
    }

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    std::unique_ptr<CoherenceController> ctrl;
    std::vector<std::unique_ptr<MemoryHierarchy>> cores;
};

TEST_F(CoherenceTest, ReadSharingAndWriteInvalidation)
{
    // Core 0 reads: Exclusive.
    cores[0]->dataAccess(GuestPhys(0x1000), false, SimCycle(10));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x1000)), LineState::Exclusive);
    // Core 1 reads: both Shared (0 supplied it).
    MemResult r = cores[1]->dataAccess(GuestPhys(0x1000), false, SimCycle(20));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x1000)), LineState::Shared);
    EXPECT_EQ(ctrl->directoryState(1, GuestPhys(0x1000)), LineState::Shared);
    EXPECT_GT(r.latency, cycles(0));
    // Core 0 writes: upgrade invalidates core 1.
    cores[0]->dataAccess(GuestPhys(0x1000), true, SimCycle(30));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x1000)), LineState::Modified);
    EXPECT_EQ(ctrl->directoryState(1, GuestPhys(0x1000)), LineState::Invalid);
    // Core 1's next read sees the dirty supplier move to Owned.
    cores[1]->dataAccess(GuestPhys(0x1000), false, SimCycle(40));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x1000)), LineState::Owned);
    EXPECT_EQ(ctrl->directoryState(1, GuestPhys(0x1000)), LineState::Shared);
    ctrl->checkAllInvariants();
    EXPECT_GT(stats.get("coherence/invalidations"), 0ULL);
}

TEST_F(CoherenceTest, WriteMissStealsModifiedLine)
{
    cores[0]->dataAccess(GuestPhys(0x2000), true, SimCycle(10));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x2000)), LineState::Modified);
    cores[1]->dataAccess(GuestPhys(0x2000), true, SimCycle(20));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x2000)), LineState::Invalid);
    EXPECT_EQ(ctrl->directoryState(1, GuestPhys(0x2000)), LineState::Modified);
    // Core 0's cached copy is gone: next read is a miss.
    MemResult r = cores[0]->dataAccess(GuestPhys(0x2000), false, SimCycle(30));
    EXPECT_FALSE(r.l1_hit);
    ctrl->checkAllInvariants();
}

TEST_F(CoherenceTest, RandomizedTrafficKeepsInvariants)
{
    Rng rng(17);
    for (int i = 0; i < 5000; i++) {
        int core = (int)rng.below(2);
        U64 addr = (rng.below(64)) * 64;
        bool write = rng.chance(1, 3);
        cores[core]->dataAccess(GuestPhys(addr), write, SimCycle(100 + i));
    }
    ctrl->checkAllInvariants();
}

class InstantCoherenceTest : public CoherenceTest
{
  protected:
    InstantCoherenceTest() : CoherenceTest(CoherenceKind::InstantVisibility) {}
};

TEST_F(InstantCoherenceTest, ZeroLatencyLineMovement)
{
    cores[0]->dataAccess(GuestPhys(0x1000), true, SimCycle(10));
    // Instant model: peer supplies the line with no interconnect delay;
    // the requestor pays only its own L1+L2 fill path.
    MemResult r = cores[1]->dataAccess(GuestPhys(0x1000), false, SimCycle(20));
    EXPECT_EQ(r.latency, cycles((U64)(cfg.l1d.latency + cfg.l2.latency)));
    EXPECT_EQ(ctrl->directoryState(0, GuestPhys(0x1000)), LineState::Owned);
    ctrl->checkAllInvariants();
}

}  // namespace
}  // namespace ptl
