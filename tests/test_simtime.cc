/**
 * Strong cycle types (lib/simtime.h): arithmetic semantics, the
 * saturating CYCLE_NEVER sentinel, compile-time rejection of the
 * nonsense operations the types exist to forbid, and a machine-level
 * checkpoint round-trip of the typed time fields.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "lib/simtime.h"
#include "sys/checkpoint.h"
#include "sys/machine.h"

namespace ptl {
namespace {

// ---------------------------------------------------------------------
// Compile-time contract. Each assert here is an operation that once
// compiled fine on raw U64 and produced a wrong answer at runtime.
// ---------------------------------------------------------------------

// Stamps and durations are register-sized and compile away.
static_assert(sizeof(SimCycle) == sizeof(U64));
static_assert(sizeof(CycleDelta) == sizeof(U64));
static_assert(std::is_trivially_copyable_v<SimCycle>);
static_assert(std::is_trivially_copyable_v<CycleDelta>);

// No implicit conversions in either direction.
static_assert(!std::is_convertible_v<U64, SimCycle>);
static_assert(!std::is_convertible_v<SimCycle, U64>);
static_assert(!std::is_convertible_v<U64, CycleDelta>);
static_assert(!std::is_convertible_v<CycleDelta, U64>);
static_assert(!std::is_convertible_v<SimCycle, CycleDelta>);
static_assert(!std::is_convertible_v<CycleDelta, SimCycle>);

template <typename A, typename B>
constexpr bool can_add = requires(A a, B b) { a + b; };
template <typename A, typename B>
constexpr bool can_sub = requires(A a, B b) { a - b; };
template <typename A, typename B>
constexpr bool can_less = requires(A a, B b) { a < b; };
template <typename R, typename A, typename B>
constexpr bool adds_to = requires(A a, B b) {
    { a + b } -> std::same_as<R>;
};
template <typename R, typename A, typename B>
constexpr bool subs_to = requires(A a, B b) {
    { a - b } -> std::same_as<R>;
};

// Adding two absolute stamps is meaningless.
static_assert(!can_add<SimCycle, SimCycle>);
// A duration minus a stamp is meaningless.
static_assert(!can_sub<CycleDelta, SimCycle>);
// Raw integers cannot mix in without an explicit construction.
static_assert(!can_add<SimCycle, U64>);
static_assert(!can_sub<SimCycle, U64>);
static_assert(!can_add<CycleDelta, U64>);
// Comparisons only work within a kind.
static_assert(!can_less<SimCycle, CycleDelta>);
static_assert(!can_less<SimCycle, U64>);
// The legal algebra, for symmetry.
static_assert(adds_to<SimCycle, SimCycle, CycleDelta>);
static_assert(subs_to<SimCycle, SimCycle, CycleDelta>);
static_assert(subs_to<CycleDelta, SimCycle, SimCycle>);
static_assert(requires(CycleDelta d, U64 n) {
    { d * n } -> std::same_as<CycleDelta>;
});

TEST(SimTime, DeltaArithmetic)
{
    CycleDelta d = cycles(100);
    EXPECT_EQ(d.raw(), 100ULL);
    EXPECT_EQ((d + cycles(20)).raw(), 120ULL);
    EXPECT_EQ((d - cycles(30)).raw(), 70ULL);
    EXPECT_EQ((d * 3).raw(), 300ULL);
    EXPECT_EQ((3 * d).raw(), 300ULL);
    EXPECT_EQ((d / 4).raw(), 25ULL);
    d += cycles(1);
    EXPECT_EQ(d, cycles(101));
    d -= cycles(100);
    EXPECT_EQ(d, cycles(1));
    EXPECT_LT(cycles(1), cycles(2));
}

TEST(SimTime, StampArithmetic)
{
    SimCycle t(1000);
    EXPECT_EQ(t.raw(), 1000ULL);
    SimCycle deadline = t + cycles(50);
    EXPECT_EQ(deadline.raw(), 1050ULL);
    EXPECT_EQ(deadline - t, cycles(50));
    EXPECT_EQ((deadline - cycles(50)), t);
    t += cycles(7);
    EXPECT_EQ(t.raw(), 1007ULL);
    ++t;
    EXPECT_EQ(t.raw(), 1008ULL);
    EXPECT_LT(t, deadline);
    EXPECT_EQ(SimCycle(), SimCycle(0));
}

/** The bug class the sentinel exists to kill: `~0ULL + latency` wraps
 *  to a small stamp that compares "already ready". CYCLE_NEVER
 *  saturates instead. */
TEST(SimTime, NeverSentinelSaturates)
{
    EXPECT_TRUE(CYCLE_NEVER.never());
    EXPECT_FALSE(SimCycle(0).never());
    EXPECT_EQ(CYCLE_NEVER + cycles(3), CYCLE_NEVER);
    EXPECT_EQ(CYCLE_NEVER + cycles(~U64(0) / 2), CYCLE_NEVER);
    SimCycle t = CYCLE_NEVER;
    t += cycles(1'000'000);
    EXPECT_TRUE(t.never());
    // Every real stamp sorts before the sentinel.
    EXPECT_LT(SimCycle(~U64(0) - 1), CYCLE_NEVER);
}

// ---------------------------------------------------------------------
// Machine-level round trip of the typed time fields.
// ---------------------------------------------------------------------

TEST(SimTime, CheckpointRoundTripsTypedTimeFields)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    cfg.guest_mem_bytes = 16 << 20;
    Machine m(cfg);
    m.vcpu(0).running = false;
    m.finalizeCores();

    // Advance virtual time deterministically via a scheduled event.
    int fired = 0;
    m.eventQueue().schedule(SimCycle(5000), EVPRI_GENERIC,
                            [&](SimCycle now) {
                                fired++;
                                EXPECT_EQ(now, SimCycle(5000));
                            });
    m.run(20'000);
    EXPECT_EQ(fired, 1);
    EXPECT_GE(m.timeKeeper().cycle(), SimCycle(5000));

    // A hidden TSC gap is part of the typed state.
    m.timeKeeper().hideGap(cycles(77));
    const SimCycle at_capture = m.timeKeeper().cycle();
    MachineCheckpoint ckpt = captureCheckpoint(m);
    EXPECT_EQ(ckpt.cycle, at_capture);
    EXPECT_EQ(ckpt.hidden_cycles, cycles(77));

    // Let time move on, then roll back.
    m.eventQueue().schedule(at_capture + cycles(4000), EVPRI_GENERIC,
                            [](SimCycle) {});
    m.run(10'000);
    EXPECT_GT(m.timeKeeper().cycle(), at_capture);

    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.timeKeeper().cycle(), at_capture);
    EXPECT_EQ(m.timeKeeper().hiddenCycles(), cycles(77));
    EXPECT_EQ(m.timeKeeper().readTsc(),
              (at_capture - cycles(77)).raw());
    EXPECT_EQ(m.lastSnapshotCycle(), ckpt.last_snapshot);
}

}  // namespace
}  // namespace ptl
