/**
 * Strong address types (lib/guestaddr.h): the sealed same-kind
 * algebra, page/offset splitting, compile-time rejection of the
 * cross-kind operations the types exist to forbid, and a machine
 * checkpoint round-trip of the typed address fields.
 */

#include <gtest/gtest.h>

#include <type_traits>

#include "lib/guestaddr.h"
#include "sys/checkpoint.h"
#include "sys/machine.h"

namespace ptl {
namespace {

// ---------------------------------------------------------------------
// Compile-time contract. Each assert is an operation that compiled
// fine on raw U64 and silently mixed address spaces — the bug class
// the OOO LSQ's virtual-address store-queue search fell into.
// ---------------------------------------------------------------------

// Register-sized, trivially copyable: the wrappers compile away.
static_assert(sizeof(GuestVirt) == sizeof(U64));
static_assert(sizeof(GuestPhys) == sizeof(U64));
static_assert(sizeof(Vpn) == sizeof(U64));
static_assert(sizeof(Pfn) == sizeof(U64));
static_assert(std::is_trivially_copyable_v<GuestVirt>);
static_assert(std::is_trivially_copyable_v<GuestPhys>);
static_assert(std::is_trivially_copyable_v<Vpn>);
static_assert(std::is_trivially_copyable_v<Pfn>);

// No implicit conversions in either direction: construction and the
// .raw() escape hatch are both explicit.
static_assert(!std::is_convertible_v<U64, GuestVirt>);
static_assert(!std::is_convertible_v<GuestVirt, U64>);
static_assert(!std::is_convertible_v<U64, GuestPhys>);
static_assert(!std::is_convertible_v<GuestPhys, U64>);
static_assert(!std::is_convertible_v<U64, Vpn>);
static_assert(!std::is_convertible_v<Pfn, U64>);

// No cross-kind assignment: a virtual address is not a physical one,
// a page number is not a byte address.
static_assert(!std::is_assignable_v<GuestVirt &, GuestPhys>);
static_assert(!std::is_assignable_v<GuestPhys &, GuestVirt>);
static_assert(!std::is_assignable_v<Vpn &, Pfn>);
static_assert(!std::is_assignable_v<Pfn &, Vpn>);
static_assert(!std::is_assignable_v<GuestVirt &, Vpn>);
static_assert(!std::is_assignable_v<GuestPhys &, Pfn>);

template <typename A, typename B>
constexpr bool can_add = requires(A a, B b) { a + b; };
template <typename A, typename B>
constexpr bool can_sub = requires(A a, B b) { a - b; };
template <typename A, typename B>
constexpr bool can_less = requires(A a, B b) { a < b; };
template <typename A, typename B>
constexpr bool can_eq = requires(A a, B b) { a == b; };
template <typename R, typename A, typename B>
constexpr bool adds_to = requires(A a, B b) {
    { a + b } -> std::same_as<R>;
};
template <typename R, typename A, typename B>
constexpr bool subs_to = requires(A a, B b) {
    { a - b } -> std::same_as<R>;
};

// Cross-kind arithmetic is meaningless: there is no operation taking
// a GuestVirt to a GuestPhys — translation is the only bridge.
static_assert(!can_add<GuestVirt, GuestPhys>);
static_assert(!can_sub<GuestVirt, GuestPhys>);
static_assert(!can_sub<GuestPhys, GuestVirt>);
static_assert(!can_add<Vpn, Pfn>);
static_assert(!can_sub<Vpn, Pfn>);
// Adding two byte addresses of the same kind is also meaningless
// (only address +/- byte offset and address - address exist).
static_assert(!can_add<GuestVirt, GuestVirt>);
static_assert(!can_add<GuestPhys, GuestPhys>);
// Comparisons and identity only work within a kind.
static_assert(!can_less<GuestVirt, GuestPhys>);
static_assert(!can_less<Vpn, Pfn>);
static_assert(!can_eq<GuestVirt, GuestPhys>);
static_assert(!can_eq<Vpn, Pfn>);
static_assert(!can_less<GuestVirt, U64>);
static_assert(!can_eq<GuestPhys, U64>);
// Page numbers do not mix with byte addresses even within a space.
static_assert(!can_add<GuestVirt, Vpn>);
static_assert(!can_eq<GuestVirt, Vpn>);
static_assert(!can_eq<GuestPhys, Pfn>);
// The legal algebra, for symmetry.
static_assert(adds_to<GuestVirt, GuestVirt, U64>);
static_assert(adds_to<GuestPhys, GuestPhys, U64>);
static_assert(subs_to<GuestVirt, GuestVirt, U64>);
static_assert(subs_to<U64, GuestVirt, GuestVirt>);
static_assert(subs_to<U64, GuestPhys, GuestPhys>);
static_assert(adds_to<Vpn, Vpn, U64>);
static_assert(adds_to<Pfn, Pfn, U64>);
static_assert(requires(GuestVirt va) {
    { va.vpn() } -> std::same_as<Vpn>;
    { va.pageOffset() } -> std::same_as<U64>;
});
static_assert(requires(GuestPhys pa) {
    { pa.pfn() } -> std::same_as<Pfn>;
});
static_assert(requires(Vpn vpn) {
    { vpn.pageBase() } -> std::same_as<GuestVirt>;
});
static_assert(requires(Pfn pfn) {
    { pfn.pageBase() } -> std::same_as<GuestPhys>;
});

// The checkpointed architectural state is typed, not raw words.
static_assert(std::is_same_v<decltype(Context::rip), GuestVirt>);
static_assert(std::is_same_v<decltype(Context::cr3), Pfn>);

TEST(GuestAddr, VirtAlgebra)
{
    GuestVirt va(0x401234);
    EXPECT_EQ(va.raw(), 0x401234ULL);
    EXPECT_EQ((va + 0x10).raw(), 0x401244ULL);
    EXPECT_EQ((va - 4).raw(), 0x401230ULL);
    EXPECT_EQ(va.withOffset(0x1000), va + 0x1000);
    EXPECT_EQ((va + 0x10) - va, 0x10ULL);
    va += 2;
    EXPECT_EQ(va, GuestVirt(0x401236));
    EXPECT_LT(va, va + 1);
    EXPECT_EQ(GuestVirt(), GuestVirt(0));
    EXPECT_EQ(va.alignedDown(64), GuestVirt(0x401200));
}

TEST(GuestAddr, PageSplitRoundTrips)
{
    GuestVirt va(0x7fff12345678);
    EXPECT_EQ(va.vpn(), Vpn(0x7fff12345));
    EXPECT_EQ(va.pageOffset(), 0x678ULL);
    EXPECT_EQ(va.vpn().pageBase() + va.pageOffset(), va);
    EXPECT_EQ(va.pageBase(), va.vpn().pageBase());

    GuestPhys pa(0x2345678);
    EXPECT_EQ(pa.pfn(), Pfn(0x2345));
    EXPECT_EQ(pa.pageOffset(), 0x678ULL);
    EXPECT_EQ(pa.pfn().pageBase() + pa.pageOffset(), pa);
    EXPECT_EQ(pa.pfn() + 1, Pfn(0x2346));
    // Stepping a page number moves the base a whole page.
    EXPECT_EQ((pa.pfn() + 1).pageBase() - pa.pageBase(), PAGE_SIZE);
}

TEST(GuestAddr, PhysAlgebra)
{
    GuestPhys pa(0x100000);
    EXPECT_EQ((pa + 64).raw(), 0x100040ULL);
    EXPECT_EQ((pa + 64).alignedDown(64) - pa, 64ULL);
    pa += PAGE_SIZE;
    EXPECT_EQ(pa.pfn(), Pfn(0x101));
    EXPECT_LT(GuestPhys(0x100), GuestPhys(0x101));
}

// ---------------------------------------------------------------------
// Machine-level round trip of the typed address fields.
// ---------------------------------------------------------------------

TEST(GuestAddr, CheckpointRoundTripsTypedAddressFields)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    cfg.guest_mem_bytes = 16 << 20;
    Machine m(cfg);
    m.vcpu(0).running = false;
    m.finalizeCores();

    const GuestVirt rip_at_capture(0x400abc);
    const Pfn cr3_at_capture(0x42);
    m.vcpu(0).rip = rip_at_capture;
    m.vcpu(0).cr3 = cr3_at_capture;

    MachineCheckpoint ckpt = captureCheckpoint(m);
    EXPECT_EQ(ckpt.contexts[0].rip, rip_at_capture);
    EXPECT_EQ(ckpt.contexts[0].cr3, cr3_at_capture);

    // Wander off, then roll back: the typed fields restore exactly.
    m.vcpu(0).rip = rip_at_capture + 0x100;
    m.vcpu(0).cr3 = Pfn(0x99);
    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.vcpu(0).rip, rip_at_capture);
    EXPECT_EQ(m.vcpu(0).cr3, cr3_at_capture);
}

}  // namespace
}  // namespace ptl
