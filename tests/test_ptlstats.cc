/** Tests for the PTLstats analysis layer. */

#include <gtest/gtest.h>

#include "stats/ptlstats.h"

namespace ptl {
namespace {

TEST(PtlStats, SubtractSnapshotsExcludesWarmup)
{
    StatsTree t;
    Counter &miss = t.counter("dcache/misses");
    Counter &hit = t.counter("dcache/hits");
    // "Warm-up": lots of cold misses.
    miss += 1000;
    hit += 100;
    t.takeSnapshot(SimCycle(1'000'000));
    // Steady state.
    miss += 20;
    hit += 5000;
    t.takeSnapshot(SimCycle(2'000'000));
    miss += 25;
    hit += 5100;
    t.takeSnapshot(SimCycle(3'000'000));

    SnapshotDelta steady = subtractSnapshots(t, 0, 2);
    EXPECT_EQ(steady.from_cycle, SimCycle(1'000'000));
    EXPECT_EQ(steady.to_cycle, SimCycle(3'000'000));
    EXPECT_EQ(steady.get("dcache/misses"), 45ULL);
    EXPECT_EQ(steady.get("dcache/hits"), 10100ULL);
    EXPECT_EQ(steady.get("absent/counter"), 0ULL);
    // Zero-delta counters are omitted.
    t.counter("never/incremented");
    SnapshotDelta d2 = subtractSnapshots(t, 1, 2);
    for (const auto &[name, value] : d2.deltas)
        EXPECT_NE(value, 0ULL);
}

TEST(PtlStats, SubtractAdjacentMatchesDeltaSeries)
{
    StatsTree t;
    Counter &c = t.counter("x");
    t.takeSnapshot(SimCycle(0));
    c += 7;
    t.takeSnapshot(SimCycle(100));
    c += 9;
    t.takeSnapshot(SimCycle(200));
    auto series = t.deltaSeries("x");
    EXPECT_EQ(subtractSnapshots(t, 0, 1).get("x"), series[0]);
    EXPECT_EQ(subtractSnapshots(t, 1, 2).get("x"), series[1]);
}

TEST(PtlStats, TimeLapseRendering)
{
    std::vector<TimeLapseSeries> series = {
        {"R", {0.0, 50.0, 100.0}},
        {"G", {100.0, 50.0, 0.0}},
    };
    std::string plot = renderTimeLapse(series, 100.0, 21);
    // Three data rows plus a header.
    EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 4);
    // Row 0: R at column 0, G at the right edge.
    size_t row0 = plot.find("    0 |");
    ASSERT_NE(row0, std::string::npos);
    std::string row = plot.substr(row0 + 7, 21);
    EXPECT_EQ(row[0], 'R');
    EXPECT_EQ(row[20], 'G');
    // Row 1: both collide mid-band (later series wins the cell).
    size_t row1 = plot.find("    1 |");
    std::string mid = plot.substr(row1 + 7, 21);
    EXPECT_EQ(mid[10], 'G');
}

TEST(PtlStats, StackedTimeLapseNormalizes)
{
    std::vector<TimeLapseSeries> series = {
        {"u", {75.0, 0.0}},
        {"k", {25.0, 0.0}},
    };
    std::string plot = renderStackedTimeLapse(series, 40);
    size_t row0 = plot.find("    0 |");
    ASSERT_NE(row0, std::string::npos);
    std::string row = plot.substr(row0 + 7, 40);
    EXPECT_EQ(std::count(row.begin(), row.end(), 'u'), 30);
    EXPECT_EQ(std::count(row.begin(), row.end(), 'k'), 10);
    // Empty interval renders blank.
    size_t row1 = plot.find("    1 |");
    std::string blank = plot.substr(row1 + 7, 40);
    EXPECT_EQ(std::count(blank.begin(), blank.end(), ' '), 40);
}

TEST(PtlStats, TopCountersSortsAndFilters)
{
    StatsTree t;
    t.counter("core0/a") += 5;
    t.counter("core0/b") += 500;
    t.counter("core0/c") += 50;
    t.counter("other/d") += 9999;
    std::string top = topCounters(t, "core0/", 2);
    // Largest two under the prefix, in order; "other/" excluded.
    size_t pb = top.find("core0/b");
    size_t pc = top.find("core0/c");
    EXPECT_NE(pb, std::string::npos);
    EXPECT_NE(pc, std::string::npos);
    EXPECT_LT(pb, pc);
    EXPECT_EQ(top.find("core0/a"), std::string::npos);
    EXPECT_EQ(top.find("other/d"), std::string::npos);
}

}  // namespace
}  // namespace ptl
