/** Tests for the PTLstats-style statistics tree and snapshot facility. */

#include <gtest/gtest.h>

#include "stats/stats.h"

namespace ptl {
namespace {

TEST(Stats, CounterBasics)
{
    StatsTree t;
    Counter &c = t.counter("commit/insns");
    c += 5;
    ++c;
    c.add(4);
    EXPECT_EQ(t.get("commit/insns"), 10ULL);
    EXPECT_TRUE(t.has("commit/insns"));
    EXPECT_FALSE(t.has("commit/uops"));
    EXPECT_EQ(t.get("commit/uops"), 0ULL);
}

TEST(Stats, SameHandleForSamePath)
{
    StatsTree t;
    Counter &a = t.counter("x");
    Counter &b = t.counter("x");
    EXPECT_EQ(&a, &b);
    a += 3;
    EXPECT_EQ(b.value(), 3ULL);
}

TEST(Stats, SnapshotDeltaSeries)
{
    StatsTree t;
    Counter &c = t.counter("dcache/misses");
    t.takeSnapshot(SimCycle(0));
    c += 10;
    t.takeSnapshot(SimCycle(1000));
    c += 25;
    t.takeSnapshot(SimCycle(2000));
    ASSERT_EQ(t.snapshotCount(), 3u);
    auto series = t.deltaSeries("dcache/misses");
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0], 10ULL);
    EXPECT_EQ(series[1], 25ULL);
    EXPECT_EQ(t.snapshot(1).cycle, SimCycle(1000));
}

TEST(Stats, RateSeriesPercent)
{
    StatsTree t;
    Counter &miss = t.counter("dcache/misses");
    Counter &acc = t.counter("dcache/accesses");
    t.takeSnapshot(SimCycle(0));
    miss += 2;
    acc += 100;
    t.takeSnapshot(SimCycle(1));
    miss += 0;
    acc += 50;
    t.takeSnapshot(SimCycle(2));
    auto rate = t.rateSeries("dcache/misses", "dcache/accesses");
    ASSERT_EQ(rate.size(), 2u);
    EXPECT_DOUBLE_EQ(rate[0], 2.0);
    EXPECT_DOUBLE_EQ(rate[1], 0.0);
}

TEST(Stats, RateSeriesZeroDenominator)
{
    StatsTree t;
    t.counter("n");
    t.counter("d");
    t.takeSnapshot(SimCycle(0));
    t.counter("n") += 5;
    t.takeSnapshot(SimCycle(1));
    auto rate = t.rateSeries("n", "d");
    ASSERT_EQ(rate.size(), 1u);
    EXPECT_DOUBLE_EQ(rate[0], 0.0);
}

TEST(Stats, CounterRegisteredAfterSnapshot)
{
    StatsTree t;
    t.counter("early") += 1;
    t.takeSnapshot(SimCycle(0));
    t.counter("late") += 7;
    t.takeSnapshot(SimCycle(1));
    auto series = t.deltaSeries("late");
    ASSERT_EQ(series.size(), 1u);
    EXPECT_EQ(series[0], 7ULL);
}

TEST(Stats, RenderTableFiltersByPrefix)
{
    StatsTree t;
    t.counter("a/x") += 1;
    t.counter("a/y") += 2;
    t.counter("b/z") += 3;
    std::string table = t.renderTable("a/");
    EXPECT_NE(table.find("a/x"), std::string::npos);
    EXPECT_NE(table.find("a/y"), std::string::npos);
    EXPECT_EQ(table.find("b/z"), std::string::npos);
}

TEST(Stats, ResetClearsEverything)
{
    StatsTree t;
    t.counter("c") += 9;
    t.takeSnapshot(SimCycle(0));
    t.reset();
    EXPECT_EQ(t.get("c"), 0ULL);
    EXPECT_EQ(t.snapshotCount(), 0u);
}

TEST(Stats, HandleStabilityUnderGrowth)
{
    StatsTree t;
    Counter &first = t.counter("first");
    for (int i = 0; i < 1000; i++)
        t.counter("c" + std::to_string(i));
    first += 42;
    EXPECT_EQ(t.get("first"), 42ULL);
}

}  // namespace
}  // namespace ptl
