/** Tests for lib/: bitops, RNG determinism, configuration presets. */

#include <gtest/gtest.h>

#include "lib/bitops.h"
#include "lib/config.h"
#include "lib/rng.h"

namespace ptl {
namespace {

TEST(Bitops, BitsAndMasks)
{
    EXPECT_EQ(bits(0xdeadbeefcafebabeULL, 0, 8), 0xbeULL);
    EXPECT_EQ(bits(0xdeadbeefcafebabeULL, 56, 8), 0xdeULL);
    EXPECT_EQ(bits(0xffULL, 4, 64), 0xfULL);
    EXPECT_EQ(lowMask(0), 0ULL);
    EXPECT_EQ(lowMask(1), 1ULL);
    EXPECT_EQ(lowMask(64), ~0ULL);
    EXPECT_EQ(byteMask(1), 0xffULL);
    EXPECT_EQ(byteMask(8), ~0ULL);
    EXPECT_TRUE(bit(0x8000000000000000ULL, 63));
    EXPECT_FALSE(bit(0x8000000000000000ULL, 62));
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 1), 0xffffffffffffff80ULL);
    EXPECT_EQ(signExtend(0x7f, 1), 0x7fULL);
    EXPECT_EQ(signExtend(0x8000, 2), 0xffffffffffff8000ULL);
    EXPECT_EQ(signExtend(0xffffffff, 4), ~0ULL);
    EXPECT_EQ(signExtend(0x7fffffff, 4), 0x7fffffffULL);
    EXPECT_EQ(signExtend(0x123, 8), 0x123ULL);
}

TEST(Bitops, Pow2AndAlign)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_EQ(log2Exact(4096), 12u);
    EXPECT_EQ(alignUp(4095, 4096), 4096ULL);
    EXPECT_EQ(alignUp(4096, 4096), 4096ULL);
    EXPECT_EQ(alignDown(4097, 4096), 4096ULL);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        ASSERT_LT(r.below(17), 17ULL);
}

TEST(Config, K8PresetMatchesPaperSection5)
{
    SimConfig c = SimConfig::preset("k8");
    EXPECT_EQ(c.rob_size, 72);
    EXPECT_EQ(c.ldq_size, 44);
    EXPECT_EQ(c.stq_size, 44);
    EXPECT_EQ(c.int_iq_count, 3);
    EXPECT_EQ(c.int_iq_size, 8);
    EXPECT_EQ(c.fp_iq_size, 36);
    EXPECT_EQ(c.fp_cluster_delay, 2);
    EXPECT_EQ(c.int_prf_size, 128);
    EXPECT_FALSE(c.load_hoisting);
    EXPECT_TRUE(c.enforce_banking);
    EXPECT_EQ(c.l1d.size_bytes, 64u << 10);
    EXPECT_EQ(c.l1d.ways, 2);
    EXPECT_EQ(c.l1d.banks, 8);
    EXPECT_EQ(c.l2.size_bytes, 1u << 20);
    EXPECT_EQ(c.l2.ways, 16);
    EXPECT_EQ(c.l2.latency, 10);
    EXPECT_EQ(c.mem_latency, 112);
    EXPECT_EQ(c.dtlb_entries, 32);
    EXPECT_EQ(c.predictor, PredictorKind::Gshare);
    EXPECT_EQ(c.gshare_entries, 16384);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(Config, K8NativeReferenceHasRealK8Tlb)
{
    SimConfig c = SimConfig::preset("k8-native");
    EXPECT_EQ(c.tlb2_entries, 1024);
    EXPECT_EQ(c.tlb2_ways, 4);
    EXPECT_TRUE(c.pde_cache);
    // Everything else identical to the simulated-model preset.
    EXPECT_EQ(c.rob_size, 72);
    EXPECT_EQ(c.dtlb_entries, 32);
}

TEST(Config, ApplyOptionOverrides)
{
    SimConfig c = SimConfig::preset("default");
    c.applyOptions("rob_size=64 predictor=bimodal load_hoisting=off "
                   "l1d_size=32768 coherence=moesi");
    EXPECT_EQ(c.rob_size, 64);
    EXPECT_EQ(c.predictor, PredictorKind::Bimodal);
    EXPECT_FALSE(c.load_hoisting);
    EXPECT_EQ(c.l1d.size_bytes, 32768u);
    EXPECT_EQ(c.coherence, CoherenceKind::Moesi);
}

TEST(Config, CacheGeometryDerivesSets)
{
    CacheParams p{64 << 10, 2, 64, 3, 8, 8};
    EXPECT_EQ(p.sets(), 512);
    CacheParams l2{1 << 20, 16, 64, 10, 16, 1};
    EXPECT_EQ(l2.sets(), 1024);
    CacheParams off{0, 16, 64, 10, 16, 1};
    EXPECT_EQ(off.sets(), 0);
}

}  // namespace
}  // namespace ptl
