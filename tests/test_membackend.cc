/**
 * Tests for the pluggable main-memory backends (src/mem/membackend.h)
 * and replacement policies (src/mem/replacement.h): per-model timing
 * (flat, row-buffer, eDRAM+PCM with deferred writes), config-JSON
 * selection, mid-flight checkpoint round-trips, two-run bit-identical
 * determinism, drain-cadence independence, and the bulk-fill
 * regression pinning the hierarchy's cycle counts under the fixed
 * (pre-refactor) and banked models.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lib/rng.h"
#include "mem/hierarchy.h"
#include "mem/replacement.h"

namespace ptl {
namespace {

// K8 preset timing used throughout: L1D 3, L2 10, flat memory 112;
// banked DRAM row hit 40 (t_cas), closed bank 76 (t_rcd+t_cas),
// conflict 112 (t_rp+t_rcd+t_cas, deliberately equal to the flat
// latency); hybrid eDRAM hit 24, PCM read 160, PCM write 480.

SimConfig
backendConfig(MemBackendKind kind)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.membackend.kind = kind;
    return cfg;
}

// ---------------------------------------------------------------------
// FixedLatencyBackend: the bit-identical default.
// ---------------------------------------------------------------------

TEST(FixedBackend, FlatLatencyAndCounters)
{
    StatsTree stats;
    SimConfig cfg = backendConfig(MemBackendKind::Fixed);
    auto be = makeMemBackend(cfg, stats, "c0/");
    EXPECT_STREQ(be->name(), "fixed");
    EXPECT_EQ(be->request(GuestPhys(0x10000), false, SimCycle(100)), SimCycle(212));
    EXPECT_EQ(be->request(GuestPhys(0x10000), true, SimCycle(100)), SimCycle(212));
    // Stateless: an immediately repeated access costs the same.
    EXPECT_EQ(be->request(GuestPhys(0x20000), false, SimCycle(100)), SimCycle(212));
    EXPECT_EQ(stats.get("c0/membackend/reads"), 2ULL);
    EXPECT_EQ(stats.get("c0/membackend/writes"), 1ULL);
    EXPECT_EQ(be->nextDue(), CYCLE_NEVER);
    MemBackend::AuditView v = be->audit();
    EXPECT_FALSE(v.banked);
    EXPECT_EQ(v.deferred_capacity, 0u);
}

// ---------------------------------------------------------------------
// BankedDramBackend: open rows, conflicts, bank queueing.
// ---------------------------------------------------------------------

TEST(BankedBackend, RowHitConflictAndBusyTiming)
{
    StatsTree stats;
    SimConfig cfg = backendConfig(MemBackendKind::BankedDram);
    auto be = makeMemBackend(cfg, stats, "c0/");
    EXPECT_STREQ(be->name(), "banked-dram");

    // Cold bank: t_rcd + t_cas = 76.
    EXPECT_EQ(be->request(GuestPhys(0x10000), false, SimCycle(100)), SimCycle(176));
    // Consecutive line, same open row: t_cas = 40.
    EXPECT_EQ(be->request(GuestPhys(0x10040), false, SimCycle(1000)), SimCycle(1040));
    EXPECT_EQ(stats.get("c0/membackend/row_hits"), 1ULL);
    // Same bank (stride row_bytes * banks), different row: conflict
    // pays t_rp + t_rcd + t_cas = 112.
    EXPECT_EQ(be->request(GuestPhys(0x10000 + 2048 * 8), false, SimCycle(2000)),
              SimCycle(2112));
    EXPECT_EQ(stats.get("c0/membackend/row_conflicts"), 1ULL);
    // Busy bank: the second same-cycle access queues behind the first
    // (row hit after the reopened row) instead of overlapping.
    SimCycle first = be->request(GuestPhys(0x10000 + 2048 * 8), false, SimCycle(3000));
    EXPECT_EQ(first, SimCycle(3040));
    EXPECT_EQ(be->request(GuestPhys(0x10040 + 2048 * 8), false, SimCycle(3000)),
              first + cycles(40));
    EXPECT_EQ(stats.get("c0/membackend/busy_waits"), 1ULL);
    // Banked model exposes its stamps to the invariant checker.
    MemBackend::AuditView v = be->audit();
    EXPECT_TRUE(v.banked);
    EXPECT_EQ(v.max_bank_busy, first + cycles(40));
}

TEST(BankedBackend, SerializeRestoreMidFlightIsBitExact)
{
    SimConfig cfg = backendConfig(MemBackendKind::BankedDram);
    StatsTree s1, s2;
    auto a = makeMemBackend(cfg, s1, "c0/");
    // Leave several banks mid-flight: busy stamps in the future.
    Rng rng(42);
    for (int i = 0; i < 32; i++)
        a->request(GuestPhys(rng.below(1 << 20) * 64), rng.chance(1, 4),
                   SimCycle(5000 + (U64)i));

    std::vector<U64> words;
    a->serialize(words);
    auto b = makeMemBackend(cfg, s2, "c0/");
    ASSERT_TRUE(b->restore(words));

    // Identical follow-up traffic must produce identical stamps.
    Rng follow(7);
    for (int i = 0; i < 64; i++) {
        U64 addr = follow.below(1 << 20) * 64;
        bool wr = follow.chance(1, 3);
        SimCycle now(5100 + (U64)i * 3);
        EXPECT_EQ(a->request(GuestPhys(addr), wr, now), b->request(GuestPhys(addr), wr, now))
            << "divergence at follow-up access " << i;
    }
    std::vector<U64> wa, wb;
    a->serialize(wa);
    b->serialize(wb);
    EXPECT_EQ(wa, wb);
    // A stream from a different model is rejected, not misread.
    StatsTree s3;
    auto fixed = makeMemBackend(backendConfig(MemBackendKind::Fixed),
                                s3, "c0/");
    EXPECT_FALSE(fixed->restore(words));
}

// ---------------------------------------------------------------------
// HybridBackend: eDRAM front, PCM banks, deferred writes.
// ---------------------------------------------------------------------

TEST(HybridBackend, EdramHitMissAndDeferredWriteDrain)
{
    StatsTree stats;
    SimConfig cfg = backendConfig(MemBackendKind::Hybrid);
    auto be = makeMemBackend(cfg, stats, "c0/");
    EXPECT_STREQ(be->name(), "hybrid");

    // Cold read: PCM array read (160) + eDRAM load-out (24).
    EXPECT_EQ(be->request(GuestPhys(0x0), false, SimCycle(100)), SimCycle(284));
    EXPECT_EQ(stats.get("c0/membackend/pcm_reads"), 1ULL);
    // Warm read: eDRAM hit at 24.
    EXPECT_EQ(be->request(GuestPhys(0x0), false, SimCycle(500)), SimCycle(524));
    EXPECT_EQ(stats.get("c0/membackend/edram_hits"), 1ULL);

    // Dirty the line, then stream 8 more tags through its 8-way set
    // (same-set stride = sets * line = 8192 * 64): the dirty victim
    // enters the deferred-write queue instead of paying PCM's 480-
    // cycle write synchronously.
    be->request(GuestPhys(0x0), true, SimCycle(600));
    constexpr U64 SET_STRIDE = 8192 * 64;
    for (int i = 1; i <= 8; i++)
        be->request(GuestPhys((U64)i * SET_STRIDE), false, SimCycle(700 + (U64)i * 400));
    EXPECT_EQ(stats.get("c0/membackend/deferred_enqueued"), 1ULL);
    EXPECT_EQ(be->audit().deferred_depth, 1u);
    ASSERT_FALSE(be->nextDue().never());

    // The queued write drains once simulated time passes its bank's
    // busy window; afterwards the backend goes quiet.
    be->drainTo(be->nextDue() + cycles(1));
    EXPECT_EQ(stats.get("c0/membackend/deferred_drained"), 1ULL);
    EXPECT_EQ(stats.get("c0/membackend/pcm_writes"), 1ULL);
    EXPECT_EQ(be->audit().deferred_depth, 0u);
    EXPECT_EQ(be->nextDue(), CYCLE_NEVER);
}

TEST(HybridBackend, FullDeferredQueueForcesSynchronousDrain)
{
    StatsTree stats;
    SimConfig cfg = backendConfig(MemBackendKind::Hybrid);
    cfg.membackend.deferred_writes = 2;
    auto be = makeMemBackend(cfg, stats, "c0/");

    // Three dirty victims in quick succession (no idle time to drain):
    // the third eviction finds the queue full and forces the oldest
    // write through synchronously.
    constexpr U64 SET_STRIDE = 8192 * 64;
    for (int i = 0; i < 8; i++)
        be->request(GuestPhys((U64)i * SET_STRIDE), true, SimCycle(100 + (U64)i));
    for (int i = 8; i < 11; i++)
        be->request(GuestPhys((U64)i * SET_STRIDE), false, SimCycle(100 + (U64)i));
    EXPECT_EQ(stats.get("c0/membackend/deferred_forced"), 1ULL);
    EXPECT_LE(be->audit().deferred_depth, be->audit().deferred_capacity);
}

TEST(HybridBackend, SerializeRestoreWithNonEmptyDeferredQueue)
{
    SimConfig cfg = backendConfig(MemBackendKind::Hybrid);
    StatsTree s1, s2;
    auto a = makeMemBackend(cfg, s1, "c0/");

    // Build up real mid-flight state: dirty lines, busy PCM banks,
    // and a non-empty deferred-write queue.
    constexpr U64 SET_STRIDE = 8192 * 64;
    for (int i = 0; i < 8; i++)
        a->request(GuestPhys((U64)i * SET_STRIDE), true, SimCycle(100 + (U64)i));
    for (int i = 8; i < 12; i++)
        a->request(GuestPhys((U64)i * SET_STRIDE), false, SimCycle(110 + (U64)i));
    ASSERT_GT(a->audit().deferred_depth, 0u);

    std::vector<U64> words;
    a->serialize(words);
    auto b = makeMemBackend(cfg, s2, "c0/");
    ASSERT_TRUE(b->restore(words));
    EXPECT_EQ(b->audit().deferred_depth, a->audit().deferred_depth);
    EXPECT_EQ(b->nextDue(), a->nextDue());

    // Replay identical traffic on both sides: completions, drains and
    // the final full state must match bit-exactly.
    Rng follow(19);
    for (int i = 0; i < 64; i++) {
        U64 addr = follow.below(4096) * SET_STRIDE / 16;
        bool wr = follow.chance(1, 2);
        SimCycle now(200 + (U64)i * 37);
        EXPECT_EQ(a->request(GuestPhys(addr), wr, now), b->request(GuestPhys(addr), wr, now))
            << "divergence at follow-up access " << i;
    }
    std::vector<U64> wa, wb;
    a->serialize(wa);
    b->serialize(wb);
    EXPECT_EQ(wa, wb);
    // Truncated streams are rejected.
    words.pop_back();
    StatsTree s3;
    auto c = makeMemBackend(cfg, s3, "c0/");
    EXPECT_FALSE(c->restore(words));
}

TEST(HybridBackend, DrainCadenceDoesNotChangeTiming)
{
    // The backend self-drains from typed stamps, so how often a core
    // pumps drainTo() must not affect any completion time or the
    // final state — the property skip-ahead cores rely on.
    SimConfig cfg = backendConfig(MemBackendKind::Hybrid);
    StatsTree s1, s2;
    auto lazy = makeMemBackend(cfg, s1, "c0/");
    auto eager = makeMemBackend(cfg, s2, "c0/");

    Rng rng(23), pump(91);
    constexpr U64 SET_STRIDE = 8192 * 64;
    for (int i = 0; i < 256; i++) {
        U64 addr = rng.below(64) * SET_STRIDE + rng.below(4) * 64;
        bool wr = rng.chance(1, 2);
        SimCycle now(1000 + (U64)i * 211);
        // The eager instance gets extra drain pumps at random times.
        if (pump.chance(1, 2))
            eager->drainTo(now - cycles(pump.below(200)));
        EXPECT_EQ(lazy->request(GuestPhys(addr), wr, now),
                  eager->request(GuestPhys(addr), wr, now))
            << "cadence-dependent completion at access " << i;
    }
    lazy->drainTo(SimCycle(1'000'000));
    eager->drainTo(SimCycle(1'000'000));
    std::vector<U64> wl, we;
    lazy->serialize(wl);
    eager->serialize(we);
    EXPECT_EQ(wl, we);
}

// ---------------------------------------------------------------------
// Two-run bit-identical determinism, per backend.
// ---------------------------------------------------------------------

class BackendDeterminism
    : public ::testing::TestWithParam<MemBackendKind>
{
};

TEST_P(BackendDeterminism, TwoRunsBitIdentical)
{
    SimConfig cfg = backendConfig(GetParam());
    StatsTree s1, s2;
    auto a = makeMemBackend(cfg, s1, "c0/");
    auto b = makeMemBackend(cfg, s2, "c0/");
    for (int run = 0; run < 2; run++) {
        Rng rng(1234);
        MemBackend &be = run == 0 ? *a : *b;
        for (int i = 0; i < 2048; i++)
            be.request(GuestPhys(rng.below(1 << 22) * 64), rng.chance(1, 3),
                       SimCycle(100 + (U64)i * 17));
        be.drainTo(SimCycle(1'000'000));
    }
    std::vector<U64> wa, wb;
    a->serialize(wa);
    b->serialize(wb);
    EXPECT_EQ(wa, wb);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendDeterminism,
                         ::testing::Values(MemBackendKind::Fixed,
                                           MemBackendKind::BankedDram,
                                           MemBackendKind::Hybrid));

// ---------------------------------------------------------------------
// Config plumbing: backends and policies selected purely from JSON.
// ---------------------------------------------------------------------

TEST(MemoryConfig, JsonSelectsBackendAndPolicies)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "banked",
        "dram": {"banks": "16", "t_cas": "20"},
        "l1d": {"repl": "tree-plru"},
        "l2":  {"repl": "random"}
    })");
    EXPECT_EQ(cfg.membackend.kind, MemBackendKind::BankedDram);
    EXPECT_EQ(cfg.membackend.dram_banks, 16);
    EXPECT_EQ(cfg.membackend.t_cas, 20);
    EXPECT_EQ(cfg.l1d.repl, ReplKind::TreePlru);
    EXPECT_EQ(cfg.l2.repl, ReplKind::Random);
    cfg.validate();

    // The configured t_cas shows up in the built backend's timing.
    StatsTree stats;
    auto be = makeMemBackend(cfg, stats, "c0/");
    be->request(GuestPhys(0x10000), false, SimCycle(100));
    EXPECT_EQ(be->request(GuestPhys(0x10040), false, SimCycle(1000)), SimCycle(1020));
}

TEST(MemoryConfig, JsonSelectsHybrid)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "hybrid",
        "edram": {"size": "2097152", "latency": "12"},
        "pcm": {"read_latency": "200", "deferred_writes": "4"}
    })");
    EXPECT_EQ(cfg.membackend.kind, MemBackendKind::Hybrid);
    EXPECT_EQ(cfg.membackend.edram_size_bytes, 2097152ULL);
    EXPECT_EQ(cfg.membackend.edram_latency, 12);
    EXPECT_EQ(cfg.membackend.pcm_read_latency, 200);
    EXPECT_EQ(cfg.membackend.deferred_writes, 4);
    cfg.validate();

    StatsTree stats;
    auto be = makeMemBackend(cfg, stats, "c0/");
    // Cold read: PCM 200 + eDRAM 12.
    EXPECT_EQ(be->request(GuestPhys(0x0), false, SimCycle(100)), SimCycle(312));
    EXPECT_EQ(be->audit().deferred_capacity, 4u);
}

// ---------------------------------------------------------------------
// Config error paths: malformed memory JSON and out-of-range
// parameters must die with a message naming the offender, not load a
// half-applied configuration.
// ---------------------------------------------------------------------

TEST(MemoryConfigErrors, UnknownTopLevelKeyIsRejected)
{
    SimConfig cfg = SimConfig::preset("k8");
    EXPECT_DEATH(
        cfg.applyMemoryJson(R"({"version": "1", "frobnicate": "3"})"),
        "unknown key 'frobnicate'");
}

TEST(MemoryConfigErrors, UnknownGroupKeyIsRejected)
{
    SimConfig cfg = SimConfig::preset("k8");
    EXPECT_DEATH(
        cfg.applyMemoryJson(
            R"({"version": "1", "dram2": {"banks": "4"}})"),
        "unknown key 'dram2.banks'");
}

TEST(MemoryConfigErrors, UnsupportedVersionIsRejected)
{
    SimConfig cfg = SimConfig::preset("k8");
    EXPECT_DEATH(cfg.applyMemoryJson(R"({"version": "2"})"),
                 "unsupported version '2'");
}

TEST(MemoryConfigErrors, MissingVersionIsRejected)
{
    SimConfig cfg = SimConfig::preset("k8");
    EXPECT_DEATH(cfg.applyMemoryJson(R"({"backend": "fixed"})"),
                 "missing required \"version\" key");
}

TEST(MemoryConfigErrors, NonPowerOfTwoDramBanksFailValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "banked",
        "dram": {"banks": "12"}
    })");
    EXPECT_DEATH(cfg.validate(), "dram_banks 12 must be a power of two");
}

TEST(MemoryConfigErrors, ZeroCasLatencyFailsValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "banked",
        "dram": {"t_cas": "0"}
    })");
    EXPECT_DEATH(cfg.validate(), "DRAM timing parameters out of range");
}

TEST(MemoryConfigErrors, TinyRowBytesFailValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "banked",
        "dram": {"row_bytes": "16"}
    })");
    EXPECT_DEATH(cfg.validate(), "row_bytes 16 must be a power of two");
}

TEST(MemoryConfigErrors, ZeroPcmLatencyFailsValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "hybrid",
        "pcm": {"read_latency": "0"}
    })");
    EXPECT_DEATH(cfg.validate(), "PCM latencies must be positive");
}

TEST(MemoryConfigErrors, ZeroDeferredWritesFailsValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "hybrid",
        "pcm": {"deferred_writes": "0"}
    })");
    EXPECT_DEATH(cfg.validate(), "deferred_writes 0 must be positive");
}

TEST(MemoryConfigErrors, BadEdramGeometryFailsValidate)
{
    SimConfig cfg = SimConfig::preset("k8");
    // 3000 bytes is not ways * line_bytes * pow2 sets — the forced
    // geometry check must reject it.
    cfg.applyMemoryJson(R"({
        "version": "1",
        "backend": "hybrid",
        "edram": {"size": "3000"}
    })");
    EXPECT_DEATH(cfg.validate(), "");
}

// ---------------------------------------------------------------------
// Replacement policies.
// ---------------------------------------------------------------------

TEST(ReplacementPolicy, LruVictimIsLeastRecentlyTouched)
{
    auto lru = makeReplacementPolicy(ReplKind::Lru, 4, 4, 0);
    for (int w = 0; w < 4; w++)
        lru->touch(1, w);
    lru->touch(1, 0);          // refresh way 0: way 1 is now oldest
    EXPECT_EQ(lru->victim(1), 1);
    lru->touch(1, 1);
    EXPECT_EQ(lru->victim(1), 2);
    // Other sets are independent: set 0 was never touched.
    EXPECT_EQ(lru->victim(0), 0);
}

TEST(ReplacementPolicy, TreePlruPointsAwayFromRecentTouches)
{
    auto plru = makeReplacementPolicy(ReplKind::TreePlru, 2, 8, 0);
    // Touch 0..7 in order: every tree level last pointed AWAY from
    // the high half, so the walk lands back on way 0 (the pseudo-LRU
    // approximation tracks halves, not exact ages).
    for (int w = 0; w < 8; w++)
        plru->touch(0, w);
    EXPECT_EQ(plru->victim(0), 0);
    // Touching the left half flips the root: the next victim comes
    // from the right half.
    plru->touch(0, 0);
    EXPECT_GE(plru->victim(0), 4);
    // The victim is never the way touched most recently.
    for (int w = 0; w < 8; w++) {
        plru->touch(0, w);
        EXPECT_NE(plru->victim(0), w);
    }
    // reset() forgets history: the walk returns to way 0.
    plru->reset();
    EXPECT_EQ(plru->victim(0), 0);
}

TEST(ReplacementPolicy, RandomIsSeededAndDeterministic)
{
    auto a = makeReplacementPolicy(ReplKind::Random, 8, 4, 99);
    auto b = makeReplacementPolicy(ReplKind::Random, 8, 4, 99);
    auto c = makeReplacementPolicy(ReplKind::Random, 8, 4, 100);
    std::vector<int> va, vb, vc;
    for (int i = 0; i < 64; i++) {
        va.push_back(a->victim(i % 8));
        vb.push_back(b->victim(i % 8));
        vc.push_back(c->victim(i % 8));
    }
    EXPECT_EQ(va, vb);          // same seed, same stream
    EXPECT_NE(va, vc);          // different seed diverges
    for (int v : va) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 4);
    }
}

TEST(ReplacementPolicy, CacheArrayEvictionCounterAndPolicySwap)
{
    // Stream ways+1 same-set lines through a tiny 2-way array: one
    // eviction, counted through the owner-bound counter.
    StatsTree stats;
    Counter &ev = stats.counter("test/evictions");
    CacheParams small{4 << 10, 2, 64, 1, 8, 1};  // 32 sets, 2 ways
    small.repl = ReplKind::Random;
    CacheArray arr(small, &ev, 7);
    EXPECT_STREQ(arr.replName(), "random");
    U64 stride = 32 * 64;       // same-set stride
    for (int i = 0; i < 3; i++)
        arr.insert(GuestPhys((U64)i * stride), LineState::Shared);
    EXPECT_EQ(ev.value(), 1ULL);
    // Exactly one of the first two lines was displaced.
    bool l0 = arr.lookup(GuestPhys(0), false) != nullptr;
    bool l1 = arr.lookup(GuestPhys(stride), false) != nullptr;
    EXPECT_TRUE(arr.lookup(GuestPhys(2 * stride), false) != nullptr);
    EXPECT_NE(l0, l1);
}

// ---------------------------------------------------------------------
// Hierarchy integration: the bulk-fill regression (ISSUE 8 satellite).
// Pre-refactor, every fill paid the flat 112-cycle latency; with the
// banked backend a demand miss opens the row, so consecutive lines
// pipeline at t_cas behind the bank stamp. Pin both schedules.
// ---------------------------------------------------------------------

class BackendHierarchyTest : public ::testing::Test
{
  protected:
    std::unique_ptr<MemoryHierarchy>
    makeHier(MemBackendKind kind, StatsTree &stats)
    {
        cfg = backendConfig(kind);
        cfg.guest_mem_bytes = 16 << 20;
        return std::make_unique<MemoryHierarchy>(cfg, *aspace, stats,
                                                 "c0/");
    }

    void
    SetUp() override
    {
        mem = std::make_unique<PhysMem>(16 << 20, 5, true);
        aspace = std::make_unique<AddressSpace>(*mem);
    }

    SimConfig cfg;
    std::unique_ptr<PhysMem> mem;
    std::unique_ptr<AddressSpace> aspace;
};

TEST_F(BackendHierarchyTest, FixedKeepsPreRefactorCycleCounts)
{
    StatsTree stats;
    auto hier = makeHier(MemBackendKind::Fixed, stats);
    // The exact pre-refactor schedule: L1D(3) + L2(10) + 112 cold,
    // and a second distinct line costs the same (no row state).
    MemResult a = hier->dataAccess(GuestPhys(0x10000), false, SimCycle(100));
    EXPECT_EQ(a.latency, cycles(125));
    MemResult b = hier->dataAccess(GuestPhys(0x10040), false, SimCycle(1000));
    EXPECT_EQ(b.latency, cycles(125));
    EXPECT_EQ(stats.get("c0/membackend/reads"), 2ULL);
}

TEST_F(BackendHierarchyTest, BankedPipelinesConsecutiveLines)
{
    StatsTree stats;
    auto hier = makeHier(MemBackendKind::BankedDram, stats);
    // Cold bank: L1D(3) + L2(10) + (t_rcd + t_cas = 76) = 89.
    MemResult a = hier->dataAccess(GuestPhys(0x10000), false, SimCycle(100));
    EXPECT_EQ(a.latency, cycles(89));
    // Next line hits the open row: L1D(3) + L2(10) + t_cas(40) = 53 —
    // the bulk-fill pessimism the backend seam removes.
    MemResult b = hier->dataAccess(GuestPhys(0x10040), false, SimCycle(1000));
    EXPECT_EQ(b.latency, cycles(53));
    EXPECT_EQ(stats.get("c0/membackend/row_hits"), 1ULL);
}

TEST_F(BackendHierarchyTest, BulkCodeFillsGoThroughTheBackend)
{
    // Straight-line cold code: fetchAccess's next-line bulk fill must
    // be priced by the backend (open-row hits), not silently free.
    StatsTree stats;
    auto hier = makeHier(MemBackendKind::BankedDram, stats);
    hier->fetchAccess(GuestPhys(0x40000), SimCycle(100));
    EXPECT_GE(stats.get("c0/membackend/reads"), 2ULL);
    EXPECT_GE(stats.get("c0/membackend/row_hits"), 1ULL);

    // Under the fixed backend the same fills are flat-priced requests,
    // keeping the default's timing bit-identical while still counting.
    StatsTree stats2;
    auto fixed = makeHier(MemBackendKind::Fixed, stats2);
    fixed->fetchAccess(GuestPhys(0x40000), SimCycle(100));
    EXPECT_GE(stats2.get("c0/membackend/reads"), 2ULL);
}

TEST_F(BackendHierarchyTest, HierarchyRunsOnAllBackends)
{
    // Smoke every backend through the same mixed traffic; each must
    // service it and land its own counters.
    for (MemBackendKind kind : {MemBackendKind::Fixed,
                                MemBackendKind::BankedDram,
                                MemBackendKind::Hybrid}) {
        StatsTree stats;
        auto hier = makeHier(kind, stats);
        Rng rng(3);
        for (int i = 0; i < 512; i++) {
            hier->dataAccess(GuestPhys(rng.below(1 << 18) * 8), rng.chance(1, 3),
                             SimCycle(100 + (U64)i * 7));
        }
        hier->drainBackend(SimCycle(1 << 20));
        EXPECT_GT(stats.get("c0/mem/accesses"), 0ULL) << (int)kind;
        switch (kind) {
        case MemBackendKind::Fixed:
            EXPECT_GT(stats.get("c0/membackend/reads"), 0ULL);
            break;
        case MemBackendKind::BankedDram:
            EXPECT_GT(stats.get("c0/membackend/row_hits")
                          + stats.get("c0/membackend/row_conflicts"),
                      0ULL);
            break;
        case MemBackendKind::Hybrid:
            EXPECT_GT(stats.get("c0/membackend/pcm_reads"), 0ULL);
            break;
        }
        EXPECT_EQ(hier->memBackend().audit().deferred_depth, 0u);
    }
}

}  // namespace
}  // namespace ptl
