/**
 * @file
 * Fast perf smoke test (`ctest -L perf`): runs the bench_simspeed
 * compute kernel briefly on the out-of-order core with the per-cycle
 * invariant checker enabled and (in PTL_VERIFY builds) the translation
 * cache's shadow-walk verification live. Catches a translation-cache
 * or pipeline regression in seconds, without the full benchmark run.
 */

#include <gtest/gtest.h>

#include "guest_harness.h"

namespace ptl {
namespace {

TEST(PerfSmoke, BenchKernelShortRunUnderVerification)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.verify = true;
    cfg.verify_interval = 1;
    CoreRunner r(cfg);

    // The bench_simspeed hash-and-update kernel, bounded instead of
    // endless: real memory traffic and data-dependent branches.
    Assembler a(CoreRunner::CODE_BASE);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 5000);
    a.mov(R::rax, 12345);
    Label top = a.label();
    a.mov(R::rdx, R::rax);
    a.and_(R::rdx, 0xFFF8);
    a.mov(R::rsi, Mem::idx(R::rbx, R::rdx, 1));
    a.add(R::rax, R::rsi);
    a.imul(R::rax, R::rax, 0x9E3779B9);
    a.mov(Mem::idx(R::rbx, R::rdx, 1), R::rax);
    a.test(R::rax, 0x100);
    Label skip = a.newLabel();
    a.jcc(COND_e, skip);
    a.add(R::rax, 7);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run(2'000'000);

    // The loop ran to completion and the functional path served the
    // vast majority of its translations from the cache.
    EXPECT_EQ(r.reg(R::rcx), 0ULL);
    const TranslationCache &tc = r.aspace.transCache();
    EXPECT_GT(tc.hits(), 10'000ULL);
    EXPECT_LT(tc.misses(), tc.hits() / 10);
#if PTL_VERIFY
    ASSERT_TRUE(tc.shadowEnabled());
    EXPECT_GT(r.stats.get("transcache/shadow_checks"), 0ULL);
    // The invariant checker actually audited the pipeline.
    EXPECT_GT(r.stats.get("core0/verify/checks"), 0ULL);
#endif
}

}  // namespace
}  // namespace ptl
