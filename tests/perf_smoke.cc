/**
 * @file
 * Fast perf smoke test (`ctest -L perf`): runs the bench_simspeed
 * compute kernel briefly on the out-of-order core with the per-cycle
 * invariant checker enabled and (in PTL_VERIFY builds) the translation
 * cache's shadow-walk verification live. Catches a translation-cache
 * or pipeline regression in seconds, without the full benchmark run.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "guest_harness.h"

namespace ptl {
namespace {

TEST(PerfSmoke, BenchKernelShortRunUnderVerification)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.verify = true;
    cfg.verify_interval = 1;
    CoreRunner r(cfg);

    // The bench_simspeed hash-and-update kernel, bounded instead of
    // endless: real memory traffic and data-dependent branches.
    Assembler a(CoreRunner::CODE_BASE);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 5000);
    a.mov(R::rax, 12345);
    Label top = a.label();
    a.mov(R::rdx, R::rax);
    a.and_(R::rdx, 0xFFF8);
    a.mov(R::rsi, Mem::idx(R::rbx, R::rdx, 1));
    a.add(R::rax, R::rsi);
    a.imul(R::rax, R::rax, 0x9E3779B9);
    a.mov(Mem::idx(R::rbx, R::rdx, 1), R::rax);
    a.test(R::rax, 0x100);
    Label skip = a.newLabel();
    a.jcc(COND_e, skip);
    a.add(R::rax, 7);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run(2'000'000);

    // The loop ran to completion and the functional path served the
    // vast majority of its translations from the cache.
    EXPECT_EQ(r.reg(R::rcx), 0ULL);
    const TranslationCache &tc = r.aspace.transCache();
    EXPECT_GT(tc.hits(), 10'000ULL);
    EXPECT_LT(tc.misses(), tc.hits() / 10);
#if PTL_VERIFY
    ASSERT_TRUE(tc.shadowEnabled());
    EXPECT_GT(r.stats.get("transcache/shadow_checks"), 0ULL);
    // The invariant checker actually audited the pipeline.
    EXPECT_GT(r.stats.get("core0/verify/checks"), 0ULL);
#endif
}

/** The hot-path machinery must actually engage on a stall-heavy
 *  run: skip-ahead absorbs quiesced cycles, select skips clean
 *  queues, and completions broadcast to waiting consumers. */
TEST(PerfSmoke, SchedulerFastPathsEngage)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    CoreRunner r(cfg);
    Assembler a(CoreRunner::CODE_BASE);
    // Serialized pointer-chase: each load depends on the previous one.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 64);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.shl(R::rdx, 13);
    a.add(R::rdx, R::rbx);
    a.add(R::rdx, R::rax);
    a.mov(R::rsi, Mem::at(R::rdx));
    a.add(R::rax, R::rsi);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run();
    EXPECT_GT(r.stats.get("core0/ooocore/skipped_cycles"), 0ULL);
    EXPECT_GT(r.stats.get("core0/ooocore/select_fast_skips"), 0ULL);
    EXPECT_GT(r.stats.get("core0/ooocore/wakeup_broadcasts"), 0ULL);
}

/** BM_OooCore guest_insns_per_s from the highest-seq entry in
 *  BENCH_simspeed.json, or -1. The file is machine-written by
 *  scripts/bench.sh (json.dump, sorted keys), so within each label
 *  block "seq" follows the "BM_OooCore" block. */
double
latestRecordedOooInsnsPerSec()
{
    std::ifstream f(std::string(PTLSIM_REPO_ROOT)
                    + "/BENCH_simspeed.json");
    if (!f)
        return -1.0;
    std::string s((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
    double best = -1.0;
    long best_seq = -1;
    size_t pos = 0;
    while ((pos = s.find("\"BM_OooCore\"", pos)) != std::string::npos) {
        size_t g = s.find("\"guest_insns_per_s\":", pos);
        size_t q = s.find("\"seq\":", pos);
        double v = (g == std::string::npos)
                       ? -1.0
                       : std::atof(s.c_str() + g + 20);
        long seq = (q == std::string::npos) ? 0
                                            : std::atol(s.c_str() + q + 6);
        if (v > 0 && seq >= best_seq) {
            best_seq = seq;
            best = v;
        }
        pos += 12;
    }
    return best;
}

// Sanitizer instrumentation slows simulation ~5x; the wall-clock
// bound below must only run in plain release builds. CMake defines
// PTL_PERF_SANITIZED for any PTL_SANITIZE preset; the compiler-macro
// checks catch sanitizers injected via raw flags.
#if !defined(PTL_PERF_SANITIZED)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PTL_PERF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) \
    || __has_feature(undefined_behavior_sanitizer)
#define PTL_PERF_SANITIZED 1
#endif
#endif
#endif

/** Regression bound: the OOO core must stay within 20% of the last
 *  recorded benchmark entry. Wall-clock is only meaningful against
 *  the release-recorded numbers, so debug/sanitizer builds skip. */
TEST(PerfSmoke, OooThroughputWithin20PercentOfRecorded)
{
#if !defined(NDEBUG) || defined(PTL_PERF_SANITIZED)
    GTEST_SKIP() << "wall-clock bound requires a plain release build";
#else
    double recorded = latestRecordedOooInsnsPerSec();
    if (recorded <= 0)
        GTEST_SKIP() << "no BM_OooCore entry in BENCH_simspeed.json";

    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    CoreRunner r(cfg);
    // The bench_simspeed hash-and-update kernel, bounded.
    Assembler a(CoreRunner::CODE_BASE);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 100'000);
    a.mov(R::rax, 12345);
    Label top = a.label();
    a.mov(R::rdx, R::rax);
    a.and_(R::rdx, 0xFFF8);
    a.mov(R::rsi, Mem::idx(R::rbx, R::rdx, 1));
    a.add(R::rax, R::rsi);
    a.imul(R::rax, R::rax, 0x9E3779B9);
    a.mov(Mem::idx(R::rbx, R::rdx, 1), R::rax);
    a.test(R::rax, 0x100);
    Label skip = a.newLabel();
    a.jcc(COND_e, skip);
    a.add(R::rax, 7);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    auto t0 = std::chrono::steady_clock::now();
    r.run(30'000'000);
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    ASSERT_GT(secs, 0.0);
    double ips = (double)r.stats.get("core0/commit/insns") / secs;
    EXPECT_GE(ips, 0.8 * recorded)
        << "OOO simulation speed regressed >20% vs the last recorded "
        << "benchmark entry (" << recorded << " insns/s)";
#endif
}

}  // namespace
}  // namespace ptl
