/**
 * End-to-end functional execution tests: guest programs assembled with
 * the repository toolchain run through decode -> basic-block cache ->
 * uop execution on the FunctionalEngine, with results checked against
 * independently computed expectations.
 */

#include <gtest/gtest.h>

#include "guest_harness.h"

namespace ptl {
namespace {

TEST(Exec, StraightLineArithmetic)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 10);
    a.mov(R::rbx, 32);
    a.add(R::rax, R::rbx);    // 42
    a.shl(R::rax, 4);         // 672
    a.sub(R::rax, 72);        // 600
    a.imul(R::rax, R::rax, 3);// 1800
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 1800ULL);
}

TEST(Exec, FactorialLoop)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 1);
    a.mov(R::rcx, 10);
    Label top = a.label();
    a.imul(R::rax, R::rcx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 3628800ULL);  // 10!
    EXPECT_EQ(g.reg(R::rcx), 0ULL);
}

TEST(Exec, MemoryLoadsStoresAllSizes)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rbx, GuestRunner::DATA_BASE);
    a.movImm64(R::rax, 0x1122334455667788ULL);
    a.mov(Mem::at(R::rbx), R::rax);
    a.mov32(Mem::at(R::rbx, 8), R::rax);
    a.mov16(Mem::at(R::rbx, 12), R::rax);
    a.mov8(Mem::at(R::rbx, 14), R::rax);
    a.movzx8(R::rcx, Mem::at(R::rbx, 7));     // 0x11
    a.movsx8(R::rdx, Mem::at(R::rbx, 0));     // sign-extended 0x88
    a.movzx16(R::rsi, Mem::at(R::rbx, 0));    // 0x7788
    a.mov(R::rdi, Mem::at(R::rbx));
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE, 8),
              0x1122334455667788ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE + 8, 4), 0x55667788ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE + 12, 2), 0x7788ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE + 14, 1), 0x88ULL);
    EXPECT_EQ(g.reg(R::rcx), 0x11ULL);
    EXPECT_EQ(g.reg(R::rdx), 0xffffffffffffff88ULL);
    EXPECT_EQ(g.reg(R::rsi), 0x7788ULL);
    EXPECT_EQ(g.reg(R::rdi), 0x1122334455667788ULL);
}

TEST(Exec, PartialRegisterWritesPreserveHighBits)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rax, 0xAAAAAAAAAAAAAAAAULL);
    a.movImm64(R::rbx, GuestRunner::DATA_BASE);
    a.movStoreImm32(Mem::at(R::rbx), 0x11);
    a.mov8(R::rax, Mem::at(R::rbx));    // only AL changes
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 0xAAAAAAAAAAAAAA11ULL);
}

TEST(Exec, Mov32ZeroExtends)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rax, ~0ULL);
    a.mov32(R::rax, R::rax);   // zero-extends to 32 bits
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 0xffffffffULL);
}

TEST(Exec, CallRetNested)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label f1 = a.newLabel(), f2 = a.newLabel(), done = a.newLabel();
    a.mov(R::rax, 0);
    a.call(f1);
    a.jmp(done);
    a.bind(f1);
    a.add(R::rax, 1);
    a.call(f2);
    a.add(R::rax, 4);
    a.ret();
    a.bind(f2);
    a.add(R::rax, 2);
    a.ret();
    a.bind(done);
    a.hlt();
    g.load(a);
    U64 rsp0 = g.reg(R::rsp);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 7ULL);
    EXPECT_EQ(g.reg(R::rsp), rsp0);  // balanced stack
}

TEST(Exec, IndirectCallAndJump)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label f = a.newLabel(), done = a.newLabel();
    a.movLabel(R::rdx, f);
    a.call(R::rdx);
    a.jmp(done);
    a.bind(f);
    a.mov(R::rax, 99);
    a.ret();
    a.bind(done);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 99ULL);
}

TEST(Exec, AdcChain128BitAdd)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    // (2^64 - 1) + 1 with carry into the high half.
    a.movImm64(R::rax, ~0ULL);
    a.mov(R::rbx, 5);         // high half A
    a.mov(R::rcx, 1);         // low half B
    a.mov(R::rdx, 7);         // high half B
    a.add(R::rax, R::rcx);    // low sum -> 0, CF=1
    a.adc(R::rbx, R::rdx);    // high sum + carry -> 13
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 0ULL);
    EXPECT_EQ(g.reg(R::rbx), 13ULL);
}

TEST(Exec, MulDivRoundTrip)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rax, 0x123456789ULL);
    a.mov(R::rbx, 100001);
    a.mul(R::rbx);            // rdx:rax = product
    a.div(R::rbx);            // back to original
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 0x123456789ULL);
    EXPECT_EQ(g.reg(R::rdx), 0ULL);
}

TEST(Exec, SignedDivision)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rax, (U64)(S64)-1000);
    a.movImm64(R::rdx, ~0ULL);  // sign extension of rax
    a.mov(R::rbx, 7);
    a.idiv(R::rbx);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ((S64)g.reg(R::rax), -142);
    EXPECT_EQ((S64)g.reg(R::rdx), -6);
}

TEST(Exec, RepMovsbCopiesExactly)
{
    GuestRunner g;
    // Pre-fill source data.
    std::vector<U8> src(300);
    for (size_t i = 0; i < src.size(); i++)
        src[i] = (U8)(i * 7 + 3);
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rsi, GuestRunner::DATA_BASE);
    a.movImm64(R::rdi, GuestRunner::DATA_BASE + 0x1000);
    a.mov(R::rcx, 300);
    a.cld();
    a.repMovsb();
    a.hlt();
    g.load(a);
    g.writeGuest(GuestRunner::DATA_BASE, src.data(), src.size());
    g.run();
    for (size_t i = 0; i < src.size(); i++)
        ASSERT_EQ(g.readGuest(GuestRunner::DATA_BASE + 0x1000 + i, 1),
                  src[i]);
    EXPECT_EQ(g.reg(R::rcx), 0ULL);
    EXPECT_EQ(g.reg(R::rsi), GuestRunner::DATA_BASE + 300);
    EXPECT_EQ(g.reg(R::rdi), GuestRunner::DATA_BASE + 0x1000 + 300);
}

TEST(Exec, RepWithZeroCountDoesNothing)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rsi, GuestRunner::DATA_BASE);
    a.movImm64(R::rdi, GuestRunner::DATA_BASE + 0x1000);
    a.mov(R::rcx, 0);
    a.repMovsb();
    a.mov(R::rax, 123);
    a.hlt();
    g.load(a);
    g.writeGuest(GuestRunner::DATA_BASE, "X", 1);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 123ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE + 0x1000, 1), 0ULL);
    EXPECT_EQ(g.reg(R::rsi), GuestRunner::DATA_BASE);
}

TEST(Exec, RepStosbFills)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rdi, GuestRunner::DATA_BASE);
    a.mov(R::rax, 0xAB);
    a.mov(R::rcx, 64);
    a.repStosb();
    a.hlt();
    g.load(a);
    g.run();
    for (int i = 0; i < 64; i++)
        ASSERT_EQ(g.readGuest(GuestRunner::DATA_BASE + i, 1), 0xABULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE + 64, 1), 0ULL);
}

TEST(Exec, FlagsPreservedByVariableShiftOfZero)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 5);
    a.cmp(R::rax, 5);         // ZF = 1
    a.mov(R::rcx, 0);
    a.shlCl(R::rbx);          // count 0: flags must survive
    Label taken = a.newLabel();
    a.jcc(COND_e, taken);
    a.mov(R::rdx, 111);       // wrong path
    a.hlt();
    a.bind(taken);
    a.mov(R::rdx, 222);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rdx), 222ULL);
}

TEST(Exec, SetccCmovcc)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 3);
    a.cmp(R::rax, 10);
    a.setcc(COND_l, R::rbx);        // 1
    a.mov(R::rcx, 77);
    a.mov(R::rdx, 88);
    a.cmovcc(COND_l, R::rcx, R::rdx);  // rcx = 88
    a.cmovcc(COND_nl, R::rsi, R::rdx); // not taken (rsi unchanged = 0)
    a.hlt();
    g.load(a);
    g.ctx.regs[REG_rsi] = 0;
    g.run();
    EXPECT_EQ(g.reg(R::rbx), 1ULL);
    EXPECT_EQ(g.reg(R::rcx), 88ULL);
    EXPECT_EQ(g.reg(R::rsi), 0ULL);
}

TEST(Exec, AtomicXaddCmpxchg)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rbx, GuestRunner::DATA_BASE);
    a.movStoreImm32(Mem::at(R::rbx), 40);
    a.mov(R::rax, 2);
    a.lockXadd(Mem::at(R::rbx), R::rax);   // mem 42, rax 40
    a.mov(R::rsi, R::rax);
    // cmpxchg success: rax == mem (42)? set mem = 100.
    a.mov(R::rax, 42);
    a.mov(R::rcx, 100);
    a.lockCmpxchg(Mem::at(R::rbx), R::rcx);
    a.setcc(COND_e, R::rdi);               // 1 on success
    // cmpxchg failure: rax(42) != mem(100): rax <- 100.
    a.mov(R::rcx, 555);
    a.lockCmpxchg(Mem::at(R::rbx), R::rcx);
    a.setcc(COND_e, R::rdx);               // 0 on failure
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rsi), 40ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE, 8), 100ULL);
    EXPECT_EQ(g.reg(R::rdi), 1ULL);
    EXPECT_EQ(g.reg(R::rdx), 0ULL);
    EXPECT_EQ(g.reg(R::rax), 100ULL);
}

TEST(Exec, XchgMemory)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rbx, GuestRunner::DATA_BASE);
    a.movStoreImm32(Mem::at(R::rbx), 7);
    a.mov(R::rax, 9);
    a.xchg(R::rax, Mem::at(R::rbx));
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rax), 7ULL);
    EXPECT_EQ(g.readGuest(GuestRunner::DATA_BASE, 8), 9ULL);
}

TEST(Exec, UnalignedAndPageCrossingAccess)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    U64 cross = GuestRunner::DATA_BASE + PAGE_SIZE - 3;
    a.movImm64(R::rbx, cross);
    a.movImm64(R::rax, 0xCAFEBABEDEADBEEFULL);
    a.mov(Mem::at(R::rbx), R::rax);   // crosses a page boundary
    a.mov(R::rcx, Mem::at(R::rbx));
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rcx), 0xCAFEBABEDEADBEEFULL);
    EXPECT_EQ(g.readGuest(cross, 8), 0xCAFEBABEDEADBEEFULL);
}

TEST(Exec, PushfPopfRoundTrip)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 1);
    a.cmp(R::rax, 1);        // ZF=1
    a.pushfq();
    a.mov(R::rbx, 0);
    a.cmp(R::rax, 0);        // ZF=0 (clobber)
    a.popfq();               // restore ZF=1
    Label z = a.newLabel();
    a.jcc(COND_e, z);
    a.mov(R::rcx, 1);
    a.hlt();
    a.bind(z);
    a.mov(R::rcx, 2);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rcx), 2ULL);
}

TEST(Exec, SseScalarDoubleComputation)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 6);
    a.cvtsi2sd(X::xmm0, R::rax);       // 6.0
    a.mov(R::rbx, 7);
    a.cvtsi2sd(X::xmm1, R::rbx);       // 7.0
    a.mulsd(X::xmm0, X::xmm1);         // 42.0
    a.addsd(X::xmm0, X::xmm1);         // 49.0
    a.sqrtsd(X::xmm2, X::xmm0);        // 7.0
    a.cvttsd2si(R::rcx, X::xmm2);
    a.comisd(X::xmm2, X::xmm1);        // equal -> ZF
    a.setcc(COND_e, R::rdx);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rcx), 7ULL);
    EXPECT_EQ(g.reg(R::rdx), 1ULL);
}

TEST(Exec, X87StackOps)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    double values[2] = {1.5, 2.25};
    a.movImm64(R::rbx, GuestRunner::DATA_BASE);
    a.fldQ(Mem::at(R::rbx));           // push 1.5
    a.fldQ(Mem::at(R::rbx, 8));        // push 2.25
    a.faddp();                         // 3.75
    a.fstpQ(Mem::at(R::rbx, 16));
    a.hlt();
    g.load(a);
    g.writeGuest(GuestRunner::DATA_BASE, values, sizeof(values));
    g.run();
    double result;
    U64 raw = g.readGuest(GuestRunner::DATA_BASE + 16, 8);
    memcpy(&result, &raw, 8);
    EXPECT_DOUBLE_EQ(result, 3.75);
}

TEST(Exec, RdtscCpuid)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.rdtsc();
    a.mov(R::rsi, R::rax);
    a.mov(R::rax, 0);
    a.cpuid();
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_EQ(g.reg(R::rsi), 100ULL);  // stub TSC
    EXPECT_EQ(g.reg(R::rax), 1ULL);    // cpuid leaf count
}

TEST(Exec, HypercallFromKernelMode)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 42);       // hypercall number
    a.mov(R::rdi, 1);
    a.mov(R::rsi, 2);
    a.mov(R::rdx, 3);
    a.hypercall();
    a.hlt();
    g.load(a);
    g.sys.hypercall_result = 0x5555;
    g.run();
    ASSERT_EQ(g.sys.hypercalls.size(), 1u);
    EXPECT_EQ(g.sys.hypercalls[0].nr, 42ULL);
    EXPECT_EQ(g.sys.hypercalls[0].a1, 1ULL);
    EXPECT_EQ(g.reg(R::rax), 0x5555ULL);
}

TEST(Exec, PtlcallBreakout)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 7);
    a.ptlcall();
    a.hlt();
    g.load(a);
    g.run();
    ASSERT_EQ(g.sys.ptlcalls.size(), 1u);
    EXPECT_EQ(g.sys.ptlcalls[0], 7ULL);
}

TEST(Exec, SelfModifyingCodeInvalidatesAndReexecutes)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    // Patch the "mov rax, 1" immediate (at patch_site+3..6) to 2,
    // then jump back and re-execute it.
    Label patch = a.newLabel(), again = a.newLabel(), done = a.newLabel();
    a.mov(R::rbx, 0);             // pass counter
    a.bind(again);
    Label site = a.newLabel();
    a.bind(site);
    a.mov(R::rax, 1);             // B8 01 00 00 00 (patched later)
    a.inc(R::rbx);
    a.cmp(R::rbx, 2);
    a.jcc(COND_e, done);
    // First pass: patch the immediate byte to 2 and loop.
    a.bind(patch);
    a.movLabel(R::rdx, site);
    a.mov(R::rcx, 2);
    a.mov8(Mem::at(R::rdx, 1), R::rcx);  // overwrite imm byte
    a.jmp(again);
    a.bind(done);
    a.hlt();
    g.load(a);
    g.run();
    // Second execution of the patched instruction must see imm = 2.
    EXPECT_EQ(g.reg(R::rax), 2ULL);
    EXPECT_GT(g.stats.get("bbcache/smc_invalidations"), 0ULL);
}

TEST(Exec, DivideErrorDeliveredToHandler)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label handler = a.newLabel();
    // Register handler and a kernel stack.
    a.mov(R::rdx, 0);
    a.mov(R::rax, 0);
    a.div(R::rax);              // #DE
    a.mov(R::rbx, 111);         // never reached
    a.hlt();
    a.bind(handler);
    a.pop(R::rsi);              // fault word
    a.mov(R::rbx, 222);
    a.hlt();
    g.load(a);
    g.ctx.event_callback = a.labelVa(handler);
    g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x1000;
    g.run();
    EXPECT_EQ(g.reg(R::rbx), 222ULL);
    // Fault word carries the fault kind in the top bits.
    EXPECT_EQ(g.reg(R::rsi) >> 48, (U64)GuestFault::DivideError);
}

TEST(Exec, PageFaultReportsAddress)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label handler = a.newLabel();
    a.movImm64(R::rbx, 0x12345000ULL);  // unmapped
    a.mov(R::rax, Mem::at(R::rbx, 0x67));
    a.hlt();
    a.bind(handler);
    a.pop(R::rsi);              // fault word
    a.mov(R::rdi, 1);
    a.hlt();
    g.load(a);
    g.ctx.event_callback = a.labelVa(handler);
    g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x1000;
    g.run();
    EXPECT_EQ(g.reg(R::rdi), 1ULL);
    EXPECT_EQ(g.reg(R::rsi) >> 48, (U64)GuestFault::PageFaultRead);
    EXPECT_EQ(g.reg(R::rsi) & lowMask(48), 0x12345067ULL);
}

TEST(Exec, EventDeliveryAndIretq)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label handler = a.newLabel(), spin = a.newLabel();
    a.mov(R::rax, 0);
    a.sti();                    // unmask events
    a.bind(spin);
    a.inc(R::rax);
    a.cmp(R::rbx, 1);           // rbx set by handler
    a.jcc(COND_ne, spin);
    a.hlt();
    a.bind(handler);
    a.add(R::rsp, 8);           // discard fault word
    a.mov(R::rbx, 1);
    a.iretq();
    g.load(a);
    g.ctx.event_callback = a.labelVa(handler);
    g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x1000;
    g.ctx.regs[REG_rbx] = 0;

    // Run a few instructions, then raise an event.
    for (int i = 0; i < 5; i++)
        g.engine->stepInsn(SimCycle((U64)i));
    g.ctx.event_pending = true;
    g.run();
    EXPECT_EQ(g.reg(R::rbx), 1ULL);
    EXPECT_GT(g.reg(R::rax), 1ULL);
    // iretq restored the spin loop's context: events unmasked again.
    EXPECT_FALSE(g.ctx.event_mask);
}

TEST(Exec, SyscallSysretRoundTrip)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label kernel_entry = a.newLabel(), user = a.newLabel();
    // Kernel setup: register lstar, drop to user code via sysret-like
    // path is complex; instead start in user mode directly.
    a.bind(user);
    a.mov(R::rax, 5);           // syscall number
    a.mov(R::rdi, 1000);
    a.syscall();
    a.mov(R::rsi, R::rax);      // syscall result
    a.mov(R::r14, 1);           // user-mode marker after return
    a.ud2();                    // end of user code: fault to terminator
    Label terminator = a.newLabel();
    a.bind(terminator);
    a.hlt();
    a.bind(kernel_entry);
    // Kernel: result = rdi + 1; return.
    a.mov(R::rax, R::rdi);
    a.add(R::rax, 1);
    a.sysret();
    g.load(a);
    g.ctx.kernel_mode = false;
    g.ctx.lstar = a.labelVa(kernel_entry);
    g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x2000;
    g.ctx.event_callback = a.labelVa(terminator);  // ud2 ends the run
    g.run();
    EXPECT_EQ(g.reg(R::rsi), 1001ULL);
    EXPECT_EQ(g.reg(R::r14), 1ULL);  // reached user mode again
    EXPECT_FALSE(g.ctx.running);
}

TEST(Exec, UserModeCannotHlt)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    Label handler = a.newLabel();
    a.hlt();                    // #GP from user mode
    a.bind(handler);
    a.mov(R::rbx, 77);
    a.hlt();                    // this handler runs in kernel mode: ok
    g.load(a);
    g.ctx.kernel_mode = false;
    g.ctx.event_callback = a.labelVa(handler);
    g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x1000;
    // User pages must be user-accessible for the fetch; they are (US).
    g.run();
    EXPECT_EQ(g.reg(R::rbx), 77ULL);
    EXPECT_FALSE(g.ctx.running);
}

TEST(Exec, BasicBlockCacheHitsOnLoops)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rcx, 50);
    Label top = a.label();
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    g.load(a);
    g.run();
    EXPECT_GT(g.stats.get("bbcache/hits"), 40ULL);
    EXPECT_LE(g.stats.get("bbcache/misses"), 4ULL);
    EXPECT_EQ(g.stats.get("commit/insns"), 1 + 50 * 2 + 1ULL);
}

TEST(Exec, UopCountsAreReasonable)
{
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 1);       // 1 uop
    a.add(R::rax, 2);       // 1 uop
    a.push(R::rax);         // 2 uops
    a.pop(R::rbx);          // 3 uops
    a.hlt();                // 1 uop (assist)
    g.load(a);
    g.run();
    EXPECT_EQ(g.stats.get("commit/insns"), 5ULL);
    EXPECT_EQ(g.stats.get("commit/uops"), 8ULL);
}

}  // namespace
}  // namespace ptl
