/**
 * Discrete-event kernel tests: EventQueue ordering/cancel/stats
 * semantics, whole-machine run-to-run determinism (bit-identical stats
 * trees and snapshots), checkpoint round-trips with in-flight device
 * work, idle fast-forward through the queue head, and the native-mode
 * round-robin across multiple VCPUs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "kernel/guestkernel.h"
#include "kernel/guestlib.h"
#include "native/cosim.h"
#include "sys/checkpoint.h"
#include "sys/machine.h"

namespace ptl {
namespace {

// ---------------------------------------------------------------------
// EventQueue unit tests.
// ---------------------------------------------------------------------

struct QueueFixture
{
    StatsTree stats;
    EventQueue q{stats};
    std::vector<int> fired;

    EventQueue::Callback
    mark(int tag)
    {
        return [this, tag](SimCycle) { fired.push_back(tag); };
    }
};

TEST(EventQueue, FiresInDueThenPriorityThenSeqOrder)
{
    QueueFixture f;
    // Scheduled deliberately out of order.
    f.q.schedule(SimCycle(20), EVPRI_GENERIC, f.mark(5));
    f.q.schedule(SimCycle(10), EVPRI_NET, f.mark(3));
    f.q.schedule(SimCycle(10), EVPRI_SNAPSHOT, f.mark(1));
    f.q.schedule(SimCycle(10), EVPRI_DISK, f.mark(2));
    f.q.schedule(SimCycle(15), EVPRI_EVCHAN, f.mark(4));
    EXPECT_EQ(f.q.nextDue(), SimCycle(10));
    EXPECT_EQ(f.q.runDue(SimCycle(20)), 5);
    EXPECT_EQ(f.fired, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(f.q.empty());
    EXPECT_EQ(f.q.nextDue(), CYCLE_NEVER);
}

TEST(EventQueue, SameCyclePriorityTiesBreakByScheduleOrder)
{
    // The determinism regression: two binary heaps are free to pop
    // equal keys in arbitrary order; the insertion sequence must break
    // the tie reproducibly.
    QueueFixture f;
    for (int i = 0; i < 32; i++)
        f.q.schedule(SimCycle(7), EVPRI_EVCHAN, f.mark(i));
    f.q.runDue(SimCycle(7));
    ASSERT_EQ(f.fired.size(), 32u);
    for (int i = 0; i < 32; i++)
        EXPECT_EQ(f.fired[i], i);
}

TEST(EventQueue, CallbackMayScheduleIntoTheSamePass)
{
    QueueFixture f;
    f.q.schedule(SimCycle(5), EVPRI_GENERIC, [&f](SimCycle now) {
        f.fired.push_back(1);
        // Due at the current cycle: runs later in this same pass.
        f.q.schedule(now, EVPRI_GENERIC, f.mark(2));
        // Due in the future: stays pending.
        f.q.schedule(now + cycles(1), EVPRI_GENERIC, f.mark(3));
    });
    EXPECT_EQ(f.q.runDue(SimCycle(5)), 2);
    EXPECT_EQ(f.fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(f.q.nextDue(), SimCycle(6));
}

TEST(EventQueue, CancelRemovesPendingAndOnlyOnce)
{
    QueueFixture f;
    EventHandle a = f.q.schedule(SimCycle(3), EVPRI_GENERIC, f.mark(1));
    EventHandle b = f.q.schedule(SimCycle(8), EVPRI_GENERIC, f.mark(2));
    EXPECT_TRUE(f.q.cancel(a));
    EXPECT_FALSE(f.q.cancel(a));          // already gone
    EXPECT_EQ(f.q.nextDue(), SimCycle(8));       // heap re-ordered
    f.q.runDue(SimCycle(10));
    EXPECT_EQ(f.fired, (std::vector<int>{2}));
    EXPECT_FALSE(f.q.cancel(b));          // already fired
    EXPECT_FALSE(f.q.cancel(EventHandle{}));
}

TEST(EventQueue, WakePendingExcludesNonWakingEvents)
{
    QueueFixture f;
    EventQueue::Options quiet;
    quiet.wakes = false;
    f.q.schedule(SimCycle(10), EVPRI_SNAPSHOT, f.mark(1), quiet);
    EXPECT_EQ(f.q.pendingCount(), 1u);
    EXPECT_EQ(f.q.wakePendingCount(), 0u);
    EventHandle h = f.q.schedule(SimCycle(12), EVPRI_EVCHAN, f.mark(2));
    EXPECT_EQ(f.q.wakePendingCount(), 1u);
    f.q.cancel(h);
    EXPECT_EQ(f.q.wakePendingCount(), 0u);
    f.q.runDue(SimCycle(10));
    EXPECT_EQ(f.q.pendingCount(), 0u);
}

TEST(EventQueue, ClearDropsEverything)
{
    QueueFixture f;
    f.q.schedule(SimCycle(1), EVPRI_GENERIC, f.mark(1));
    f.q.schedule(SimCycle(2), EVPRI_GENERIC, f.mark(2));
    f.q.clear();
    EXPECT_TRUE(f.q.empty());
    EXPECT_EQ(f.q.wakePendingCount(), 0u);
    EXPECT_EQ(f.q.runDue(SimCycle(100)), 0);
    EXPECT_TRUE(f.fired.empty());
}

TEST(EventQueue, PendingSortedExposesTagsInFiringOrder)
{
    QueueFixture f;
    EventQueue::Options timer;
    timer.kind = EVK_TIMER_PORT;
    timer.arg = 4;
    timer.name = "evchn";
    f.q.schedule(SimCycle(30), EVPRI_EVCHAN, f.mark(1), timer);
    EventQueue::Options dev;
    dev.kind = EVK_DEVICE;
    f.q.schedule(SimCycle(20), EVPRI_DISK, f.mark(2), dev);
    std::vector<EventQueue::PendingEvent> p = f.q.pendingSorted();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p[0].due, SimCycle(20));
    EXPECT_EQ(p[0].kind, EVK_DEVICE);
    EXPECT_EQ(p[1].due, SimCycle(30));
    EXPECT_EQ(p[1].kind, EVK_TIMER_PORT);
    EXPECT_EQ(p[1].arg, 4ULL);
    EXPECT_STREQ(p[1].name, "evchn");
}

TEST(EventQueue, StatsCountersTrackActivity)
{
    QueueFixture f;
    EventHandle h = f.q.schedule(SimCycle(1), EVPRI_GENERIC, f.mark(1));
    f.q.schedule(SimCycle(2), EVPRI_GENERIC, f.mark(2));
    f.q.cancel(h);
    f.q.runDue(SimCycle(5));
    EXPECT_EQ(f.stats.get("eventq/scheduled"), 2ULL);
    EXPECT_EQ(f.stats.get("eventq/cancelled"), 1ULL);
    EXPECT_EQ(f.stats.get("eventq/fired"), 1ULL);
    EXPECT_EQ(f.stats.get("eventq/peak_pending"), 2ULL);
}

// ---------------------------------------------------------------------
// Cross-domain inbox: the one EventQueue surface another Domain's
// thread may touch (sharding design).
// ---------------------------------------------------------------------

TEST(EventQueue, CrossDomainPostsDrainAtRunDueInDeterministicOrder)
{
    QueueFixture f;
    // Owner-scheduled events first; crossers posted afterwards get
    // later seq numbers at drain time, so a same-(due, priority) tie
    // breaks in favor of the owner's events...
    f.q.schedule(SimCycle(5), EVPRI_GENERIC, f.mark(1));
    f.q.schedule(SimCycle(5), EVPRI_GENERIC, f.mark(2));
    EventQueue::Options opts;
    opts.name = "crosspost";
    f.q.postCrossDomain(SimCycle(5), EVPRI_GENERIC, f.mark(3), opts);
    f.q.postCrossDomain(SimCycle(5), EVPRI_GENERIC, f.mark(4), opts);
    // ...while a higher-priority crosser still fires in its
    // (due, priority) slot despite being admitted last.
    f.q.postCrossDomain(SimCycle(5), EVPRI_SNAPSHOT, f.mark(0), opts);
    // Posts sit in the inbox, not the heap, until the owner drains.
    EXPECT_EQ(f.q.pendingCount(), 2u);
    EXPECT_EQ(f.q.runDue(SimCycle(5)), 5);
    EXPECT_EQ(f.fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CrossDomainPostsFromManyThreadsAllFire)
{
    QueueFixture f;
    constexpr int kThreads = 4;
    constexpr int kPosts = 64;
    EventQueue::Options opts;
    opts.name = "crosspost";
    std::vector<std::thread> posters;
    for (int t = 0; t < kThreads; t++) {
        posters.emplace_back([&f, &opts, t] {
            for (int i = 0; i < kPosts; i++) {
                f.q.postCrossDomain(SimCycle(3), EVPRI_GENERIC,
                                    f.mark(t * kPosts + i), opts);
            }
        });
    }
    // Joining all posters is this test's stand-in for the epoch
    // barrier: every post due at cycle C lands before runDue(C).
    for (std::thread &th : posters)
        th.join();
    EXPECT_EQ(f.q.pendingCount(), 0u);  // still in the inbox
    EXPECT_EQ(f.q.runDue(SimCycle(3)), kThreads * kPosts);
    // Interleaving across posters is scheduler-dependent, so assert
    // the set (every tag exactly once), not the order.
    ASSERT_EQ(f.fired.size(), size_t(kThreads) * kPosts);
    std::vector<int> sorted = f.fired;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < kThreads * kPosts; i++)
        EXPECT_EQ(sorted[size_t(i)], i);
}

TEST(EventQueue, ClearDropsUndrainedCrossDomainPosts)
{
    QueueFixture f;
    EventQueue::Options opts;
    opts.name = "crosspost";
    f.q.postCrossDomain(SimCycle(1), EVPRI_GENERIC, f.mark(1), opts);
    f.q.clear();
    EXPECT_EQ(f.q.runDue(SimCycle(100)), 0);
    EXPECT_TRUE(f.fired.empty());
}

// ---------------------------------------------------------------------
// Whole-machine tests on the booted paravirtual kernel.
// ---------------------------------------------------------------------

SimConfig
testConfig(const char *core = "seq")
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = core;
    cfg.commit_checker = true;
    cfg.core_freq_hz = 10'000'000;
    cfg.timer_hz = 1000;
    cfg.snapshot_interval = 100'000;
    cfg.guest_mem_bytes = 32 << 20;
    return cfg;
}

struct BootedMachine
{
    BootedMachine(const SimConfig &cfg,
                  void (*user_code)(Assembler &, GuestLib &))
        : machine(cfg), builder(machine.addressSpace(), machine.vcpu(0),
                                machine.timerPeriodCycles())
    {
        Assembler &ua = builder.userAsm();
        GuestLib lib(ua);
        Label entry = ua.newLabel();
        Label skip = ua.newLabel();
        ua.jmp(skip);
        lib.emitRuntime();
        ua.bind(skip);
        ua.bind(entry);
        user_code(ua, lib);
        builder.setInitTask(ua.labelVa(entry), 0);
        builder.build();
        machine.finalizeCores();
    }

    Machine machine;
    KernelBuilder builder;
};

/** Workload touching every event source: timer sleeps, a disk DMA
 *  read, and a network round-trip through the latency model. */
void
busyGuest(Assembler &a, GuestLib &lib)
{
    a.mov(R::rdi, 3);
    lib.syscall(GSYS_sleep);
    a.mov(R::rdi, 0);
    a.mov(R::rsi, 2);
    a.movImm64(R::rdx, USER_DATA_VA);
    lib.syscall(GSYS_disk_read);
    a.sub(R::rsp, 16);
    a.movStoreImm32(Mem::at(R::rsp), 99);
    a.mov(R::rdi, 0);
    a.mov(R::rsi, R::rsp);
    a.mov(R::rdx, 8);
    lib.syscall(GSYS_net_send);
    a.mov(R::rdi, 2);
    lib.syscall(GSYS_sleep);
    a.mov(R::rdi, 21);
    lib.syscall(GSYS_exit);
}

std::unique_ptr<BootedMachine>
busyMachine(const char *core)
{
    auto bm = std::make_unique<BootedMachine>(testConfig(core), busyGuest);
    std::vector<U8> image(64 * DISK_SECTOR_BYTES, 0x5A);
    bm->machine.disk().setImage(std::move(image));
    return bm;
}

/**
 * The determinism proof for the event kernel: two identically
 * configured machines running the same guest must produce bit-identical
 * results — same final cycle, same stats tree (every path, every
 * value), and the same snapshot series (Figure 2/3 inputs). Any
 * nondeterministic tie-break in same-cycle event ordering shows up
 * here as a diverging counter or snapshot.
 */
TEST(EventMachine, TwoIdenticalRunsAreBitIdentical)
{
    for (const char *core : {"seq", "ooo"}) {
        auto a = busyMachine(core);
        auto b = busyMachine(core);
        Machine::RunResult ra = a->machine.run(500'000'000);
        Machine::RunResult rb = b->machine.run(500'000'000);
        ASSERT_TRUE(ra.shutdown);
        ASSERT_TRUE(rb.shutdown);
        EXPECT_EQ(ra.cycles, rb.cycles) << core;
        EXPECT_EQ(a->machine.timeKeeper().cycle(),
                  b->machine.timeKeeper().cycle())
            << core;

        StatsTree &sa = a->machine.stats();
        StatsTree &sb = b->machine.stats();
        ASSERT_EQ(sa.paths(), sb.paths()) << core;
        for (const std::string &p : sa.paths())
            ASSERT_EQ(sa.get(p), sb.get(p)) << core << ": " << p;

        ASSERT_EQ(sa.snapshotCount(), sb.snapshotCount()) << core;
        for (size_t i = 0; i < sa.snapshotCount(); i++) {
            ASSERT_EQ(sa.snapshot(i).cycle, sb.snapshot(i).cycle)
                << core << " snapshot " << i;
            ASSERT_EQ(sa.snapshot(i).values, sb.snapshot(i).values)
                << core << " snapshot " << i;
        }
    }
}

/** The old per-cycle poll is gone: while every VCPU sleeps, the loop
 *  must leap to the queue head rather than spin. With a 10k-cycle
 *  timer period, a sleep-dominated run fires far fewer events than it
 *  covers cycles. */
TEST(EventMachine, IdleFastForwardJumpsToQueueHead)
{
    BootedMachine bm(testConfig("seq"), [](Assembler &a, GuestLib &lib) {
        a.mov(R::rdi, 20);
        lib.syscall(GSYS_sleep);
        a.mov(R::rdi, 0);
        lib.syscall(GSYS_exit);
    });
    Machine::RunResult r = bm.machine.run(1'000'000'000);
    ASSERT_TRUE(r.shutdown);
    U64 idle = bm.machine.stats().get("external/cycles_in_mode/idle");
    U64 fired = bm.machine.stats().get("eventq/fired");
    EXPECT_GT(idle, 150'000ULL);       // ~20 ticks * 10k cycles
    EXPECT_LT(fired, 2'000ULL);        // events, not cycles
    // Every scheduled event was either fired or is still pending.
    EXPECT_EQ(bm.machine.stats().get("eventq/scheduled"),
              fired + bm.machine.eventQueue().pendingCount());
}

/** A machine whose guest halts with nothing scheduled must report a
 *  stall instead of burning the full cycle budget. */
TEST(EventMachine, StalledDomainDetectedWithoutPolling)
{
    SimConfig cfg = testConfig("seq");
    Machine m(cfg);
    m.finalizeCores();
    // No kernel, no runnable VCPU, nothing in the queue but the
    // (non-waking) snapshot cadence.
    m.vcpu(0).running = false;
    Machine::RunResult r = m.run(100'000'000);
    EXPECT_TRUE(r.stalled);
    EXPECT_LT(r.cycles, 100'000'000ULL);
}

/**
 * Checkpoint mid-I/O: capture while a disk DMA is in flight and timer
 * deliveries are scheduled, finish, then restore and finish again —
 * the replay must land every completion at the same cycle and reach
 * the same architectural end state.
 */
TEST(EventMachine, CheckpointRoundTripWithInFlightEvents)
{
    auto bm = busyMachine("seq");
    Machine &m = bm->machine;

    // Step in small quanta until the disk request is genuinely
    // in flight (issued, not yet completed).
    for (int i = 0; m.disk().pendingTransfers().empty(); i++) {
        ASSERT_LT(i, 1'000'000) << "disk request never became pending";
        Machine::RunResult r = m.run(500);
        ASSERT_FALSE(r.shutdown) << "disk request never became pending";
    }
    MachineCheckpoint ckpt = captureCheckpoint(m);
    EXPECT_FALSE(ckpt.disk_pending.empty());
    EXPECT_FALSE(ckpt.timer_events.empty());   // next tick is armed

    Machine::RunResult r1 = m.run(500'000'000);
    ASSERT_TRUE(r1.shutdown);
    const SimCycle end_cycle1 = m.timeKeeper().cycle();
    U64 hash1 = hashGuestMemory(m.physMem());
    Context end1 = m.vcpu(0);

    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.timeKeeper().cycle(), ckpt.cycle);
    EXPECT_EQ(m.disk().pendingTransfers().size(),
              ckpt.disk_pending.size());
    Machine::RunResult r2 = m.run(500'000'000);
    ASSERT_TRUE(r2.shutdown);
    EXPECT_EQ(r2.exit_code, r1.exit_code);
    EXPECT_EQ(m.timeKeeper().cycle(), end_cycle1);
    EXPECT_EQ(hashGuestMemory(m.physMem()), hash1);
    ContextDiff diff = compareContexts(end1, m.vcpu(0));
    EXPECT_TRUE(diff.equal) << diff.description;
}

/**
 * Checkpoint mid-stall on the OOO core: the guest runs a serialized
 * pointer-chase (each load address depends on the previous load), so
 * the pipeline spends most of its time slept inside skip-ahead with
 * the dependent uops parked in the issue queue on partial ready
 * bitmasks and the miss outstanding in an MSHR. We step in small
 * quanta until a quantum shows skipped cycles but zero commits after
 * data misses began — i.e. we paused inside such a stall — capture
 * there, and require the restored machine to replay to a cycle-exact,
 * bit-identical end state. (Capture quiesces the pipeline via
 * resetMicroarch on both the continuing and the restored machine, so
 * the in-flight microarchitectural state is rebuilt identically from
 * the architectural state on both paths.)
 */
TEST(EventMachine, CheckpointRoundTripMidStallOnOooCore)
{
    auto bm = std::make_unique<BootedMachine>(
        testConfig("ooo"), [](Assembler &a, GuestLib &lib) {
            a.movImm64(R::rbx, USER_DATA_VA);
            a.mov(R::rcx, 64);
            a.mov(R::rax, 0);
            Label top = a.label();
            a.mov(R::rdx, R::rcx);
            a.shl(R::rdx, 13);           // 8 KB stride
            a.add(R::rdx, R::rbx);
            a.add(R::rdx, R::rax);       // serialize on previous load
            a.mov(R::rsi, Mem::at(R::rdx));
            a.add(R::rax, R::rsi);
            a.dec(R::rcx);
            a.jcc(COND_ne, top);
            a.mov(R::rdi, 7);
            lib.syscall(GSYS_exit);
        });
    Machine &m = bm->machine;

    U64 prev_skip = 0, prev_insns = 0;
    bool mid_stall = false;
    for (int i = 0; i < 1'000'000 && !mid_stall; i++) {
        Machine::RunResult r = m.run(100);
        ASSERT_FALSE(r.shutdown)
            << "guest finished before a stall was caught";
        U64 skip = m.stats().get("core0/ooocore/skipped_cycles");
        U64 insns = m.stats().get("core0/commit/insns");
        U64 misses = m.stats().get("core0/dcache/misses");
        mid_stall = skip > prev_skip && insns == prev_insns
                    && insns > 0 && misses > 0;
        prev_skip = skip;
        prev_insns = insns;
    }
    ASSERT_TRUE(mid_stall) << "no quiesced memory-stall quantum found";

    MachineCheckpoint ckpt = captureCheckpoint(m);
    Machine::RunResult r1 = m.run(500'000'000);
    ASSERT_TRUE(r1.shutdown);
    const SimCycle end_cycle1 = m.timeKeeper().cycle();
    U64 hash1 = hashGuestMemory(m.physMem());
    Context end1 = m.vcpu(0);

    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.timeKeeper().cycle(), ckpt.cycle);
    Machine::RunResult r2 = m.run(500'000'000);
    ASSERT_TRUE(r2.shutdown);
    EXPECT_EQ(r2.exit_code, r1.exit_code);
    EXPECT_EQ(m.timeKeeper().cycle(), end_cycle1);
    EXPECT_EQ(hashGuestMemory(m.physMem()), hash1);
    ContextDiff diff = compareContexts(end1, m.vcpu(0));
    EXPECT_TRUE(diff.equal) << diff.description;
}

/**
 * The mid-stall checkpoint again, with the banked-DRAM backend
 * selected purely from the memory config JSON: the per-bank busy
 * stamps and open-row state are part of the timing model now, and the
 * capture/restore protocol (resetTimebase on both sides) must keep
 * resumes cycle-exact with that state in play too.
 */
TEST(EventMachine, CheckpointRoundTripMidStallOnBankedDram)
{
    SimConfig cfg = testConfig("ooo");
    cfg.applyMemoryJson(R"({"version": "1", "backend": "banked"})");
    auto bm = std::make_unique<BootedMachine>(
        cfg, [](Assembler &a, GuestLib &lib) {
            a.movImm64(R::rbx, USER_DATA_VA);
            a.mov(R::rcx, 64);
            a.mov(R::rax, 0);
            Label top = a.label();
            a.mov(R::rdx, R::rcx);
            a.shl(R::rdx, 13);           // 8 KB stride
            a.add(R::rdx, R::rbx);
            a.add(R::rdx, R::rax);       // serialize on previous load
            a.mov(R::rsi, Mem::at(R::rdx));
            a.add(R::rax, R::rsi);
            a.dec(R::rcx);
            a.jcc(COND_ne, top);
            a.mov(R::rdi, 7);
            lib.syscall(GSYS_exit);
        });
    Machine &m = bm->machine;

    U64 prev_insns = 0;
    bool mid_stall = false;
    for (int i = 0; i < 1'000'000 && !mid_stall; i++) {
        Machine::RunResult r = m.run(100);
        ASSERT_FALSE(r.shutdown)
            << "guest finished before a stall was caught";
        U64 insns = m.stats().get("core0/commit/insns");
        U64 misses = m.stats().get("core0/dcache/misses");
        mid_stall = insns == prev_insns && insns > 0 && misses > 0;
        prev_insns = insns;
    }
    ASSERT_TRUE(mid_stall) << "no memory-stall quantum found";

    MachineCheckpoint ckpt = captureCheckpoint(m);
    Machine::RunResult r1 = m.run(500'000'000);
    ASSERT_TRUE(r1.shutdown);
    const SimCycle end_cycle1 = m.timeKeeper().cycle();
    U64 hash1 = hashGuestMemory(m.physMem());
    Context end1 = m.vcpu(0);
    // The banked model was genuinely in the timing path.
    EXPECT_GT(m.stats().get("core0/membackend/reads"), 0ULL);

    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.timeKeeper().cycle(), ckpt.cycle);
    Machine::RunResult r2 = m.run(500'000'000);
    ASSERT_TRUE(r2.shutdown);
    EXPECT_EQ(r2.exit_code, r1.exit_code);
    EXPECT_EQ(m.timeKeeper().cycle(), end_cycle1);
    EXPECT_EQ(hashGuestMemory(m.physMem()), hash1);
    ContextDiff diff = compareContexts(end1, m.vcpu(0));
    EXPECT_TRUE(diff.equal) << diff.description;
}

/** In-flight network packets (and already-delivered unread bytes) ride
 *  through a checkpoint and still arrive at their scheduled cycles. */
TEST(EventMachine, CheckpointCarriesInFlightNetworkPackets)
{
    SimConfig cfg = testConfig("seq");
    Machine m(cfg);
    // Park the VCPU on a hlt spin (delivery wakes it) so the run loop
    // has something harmless to execute.
    AddressSpace &as = m.addressSpace();
    Pfn cr3 = as.createRoot();
    as.mapRange(cr3, GuestVirt(0x400000), PAGE_SIZE, Pte::RW | Pte::US);
    Context &ctx = m.vcpu(0);
    ctx.cr3 = cr3;
    ctx.kernel_mode = true;
    ctx.rip = GuestVirt(0x400000);
    static const U8 spin[] = {0xF4, 0xEB, 0xFD};  // hlt; jmp hlt
    GuestAccess acc =
        guestTranslate(as, ctx, GuestVirt(0x400000), MemAccess::Write);
    m.physMem().writeBytes(acc.paddr, spin, sizeof(spin));
    ctx.running = false;
    m.finalizeCores();

    U8 payload[64];
    for (size_t i = 0; i < sizeof(payload); i++)
        payload[i] = (U8)i;
    m.net().send(0, payload, sizeof(payload));
    ASSERT_FALSE(m.net().inFlight().empty());
    const SimCycle arrival = m.net().inFlight().front().ready;

    MachineCheckpoint ckpt = captureCheckpoint(m);
    ASSERT_EQ(ckpt.net_pending.size(), 1u);

    // Let the original deliver, then roll back: the packet must be in
    // flight again and deliver at the same cycle as before.
    for (int i = 0; i < 1000 && m.net().available(0) == 0; i++)
        m.run(1000);
    EXPECT_EQ(m.net().available(0), sizeof(payload));

    restoreCheckpoint(m, ckpt);
    EXPECT_EQ(m.net().available(0), 0u);
    ASSERT_EQ(m.net().inFlight().size(), 1u);
    EXPECT_EQ(m.net().inFlight().front().ready, arrival);
    for (int i = 0; i < 1000 && m.net().available(0) == 0; i++)
        m.run(1000);
    EXPECT_EQ(m.net().available(0), sizeof(payload));
    U8 out[64] = {};
    ASSERT_EQ(m.net().recv(0, out, sizeof(out)), sizeof(payload));
    for (size_t i = 0; i < sizeof(payload); i++)
        ASSERT_EQ(out[i], payload[i]);
}

// ---------------------------------------------------------------------
// Native-mode round robin and the rip-trigger sentinel fix.
// ---------------------------------------------------------------------

/** Bare two-VCPU machine: each VCPU runs its own counting loop and
 *  halts. */
std::unique_ptr<Machine>
twoVcpuMachine()
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    cfg.vcpu_count = 2;
    cfg.guest_mem_bytes = 16 << 20;
    auto m = std::make_unique<Machine>(cfg);
    AddressSpace &as = m->addressSpace();
    Pfn cr3 = as.createRoot();
    as.mapRange(cr3, GuestVirt(0x400000), 64 * PAGE_SIZE, Pte::RW | Pte::US);
    as.mapRange(cr3, GuestVirt(0x600000), 64 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);
    as.mapRange(cr3, GuestVirt(0x7F0000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);

    Assembler a(0x400000);
    // Loop 500 times incrementing rax, store rax to a per-vcpu slot
    // (rdi holds the slot address), halt.
    a.mov(R::rax, 0);
    a.mov(R::rcx, 500);
    Label top = a.label();
    a.inc(R::rax);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.mov(Mem::at(R::rdi), R::rax);
    a.hlt();
    std::vector<U8> image = a.finalize();

    Context &c0 = m->vcpu(0);
    c0.cr3 = cr3;
    c0.kernel_mode = true;
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc =
            guestTranslate(as, c0, GuestVirt(0x400000 + i),
                           MemAccess::Write);
        m->physMem().writeBytes(acc.paddr, &image[i], 1);
    }
    for (int v = 0; v < 2; v++) {
        Context &ctx = m->vcpu(v);
        ctx.cr3 = cr3;
        ctx.kernel_mode = true;
        ctx.rip = GuestVirt(0x400000);
        ctx.regs[REG_rsp] = 0x7FF000 - (U64)v * 0x1000;
        ctx.regs[REG_rdi] = 0x600000 + (U64)v * 8;
        ctx.running = true;
    }
    m->finalizeCores();
    return m;
}

U64
readPhys(Machine &m, U64 va)
{
    GuestAccess acc =
        guestTranslate(m.addressSpace(), m.vcpu(0), GuestVirt(va),
                       MemAccess::Read);
    U64 v = 0;
    m.physMem().readBytes(acc.paddr, &v, 8);
    return v;
}

/** The old native slice only ever stepped VCPU 0; with two runnable
 *  VCPUs both must finish their loops in native mode. */
TEST(EventMachine, NativeSliceRoundRobinsAcrossVcpus)
{
    auto m = twoVcpuMachine();
    m->setMode(Machine::Mode::Native);
    m->run(50'000'000);
    EXPECT_EQ(readPhys(*m, 0x600000), 500ULL);
    EXPECT_EQ(readPhys(*m, 0x600008), 500ULL);
    EXPECT_GT(m->stats().get("native/vcpu0/commit/insns"), 500ULL);
    EXPECT_GT(m->stats().get("native/vcpu1/commit/insns"), 500ULL);
}

/** RIP 0 used to be the unarmed sentinel; the trigger is now an
 *  explicit optional so address 0 is a legal trigger point. */
TEST(EventMachine, RipTriggerZeroIsArmable)
{
    SimConfig cfg = testConfig("seq");
    Machine m(cfg);
    EXPECT_FALSE(m.ripTriggerArmed());
    m.setRipTrigger(0);
    EXPECT_TRUE(m.ripTriggerArmed());
    m.clearRipTrigger();
    EXPECT_FALSE(m.ripTriggerArmed());
}

}  // namespace
}  // namespace ptl
