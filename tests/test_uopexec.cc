/**
 * Property tests for uop functional semantics.
 *
 * Since the test host is itself an x86-64 machine, we validate the uop
 * executor's results AND flags against the host silicon via inline
 * assembly — the same idea as PTLsim's native-mode co-simulation
 * self-validation. Flags that the x86 specification leaves undefined
 * for an operation are masked out before comparison.
 */

#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "lib/rng.h"
#include "uop/uopexec.h"

namespace ptl {
namespace {

constexpr U16 ALL_FLAGS =
    FLAG_CF | FLAG_PF | FLAG_AF | FLAG_ZF | FLAG_SF | FLAG_OF;

/** Convert lahf's AH byte + seto's AL byte into our flag word. */
U16
hostFlagWord(U64 rax)
{
    U8 ah = (U8)(rax >> 8);
    U8 al = (U8)rax;
    U16 f = 0;
    if (ah & 0x01) f |= FLAG_CF;
    if (ah & 0x04) f |= FLAG_PF;
    if (ah & 0x10) f |= FLAG_AF;
    if (ah & 0x40) f |= FLAG_ZF;
    if (ah & 0x80) f |= FLAG_SF;
    if (al & 0x01) f |= FLAG_OF;
    return f;
}

struct HostOut
{
    U64 value;
    U16 flags;
};

#define DEFINE_HOST_BINOP(FN, INSN)                                       \
    template <typename T>                                                 \
    HostOut FN(U64 av, U64 bv)                                            \
    {                                                                     \
        T a = (T)av;                                                      \
        T b = (T)bv;                                                      \
        U64 rax;                                                          \
        asm(INSN " %[b], %[a]\n\t"                                        \
            "lahf\n\t"                                                    \
            "seto %%al"                                                   \
            : "=&a"(rax), [a] "+r"(a)                                     \
            : [b] "r"(b)                                                  \
            : "cc");                                                      \
        return {(U64)a, hostFlagWord(rax)};                               \
    }

DEFINE_HOST_BINOP(hostAdd, "add")
DEFINE_HOST_BINOP(hostSub, "sub")
DEFINE_HOST_BINOP(hostAnd, "and")
DEFINE_HOST_BINOP(hostOr, "or")
DEFINE_HOST_BINOP(hostXor, "xor")
DEFINE_HOST_BINOP(hostImul2, "imul")   // only 16/32/64-bit forms exist

#define DEFINE_HOST_CARRYOP(FN, INSN)                                     \
    template <typename T>                                                 \
    HostOut FN(U64 av, U64 bv, bool carry)                                \
    {                                                                     \
        T a = (T)av;                                                      \
        T b = (T)bv;                                                      \
        U64 rax;                                                          \
        U64 cin = carry;                                                  \
        asm("btq $0, %[cin]\n\t" INSN " %[b], %[a]\n\t"                   \
            "lahf\n\t"                                                    \
            "seto %%al"                                                   \
            : "=&a"(rax), [a] "+r"(a)                                     \
            : [b] "r"(b), [cin] "m"(cin)                                  \
            : "cc");                                                      \
        return {(U64)a, hostFlagWord(rax)};                               \
    }

DEFINE_HOST_CARRYOP(hostAdc, "adc")
DEFINE_HOST_CARRYOP(hostSbb, "sbb")

#define DEFINE_HOST_SHIFT(FN, INSN)                                       \
    template <typename T>                                                 \
    HostOut FN(U64 av, U8 count)                                          \
    {                                                                     \
        T a = (T)av;                                                      \
        U64 rax;                                                          \
        asm(INSN " %%cl, %[a]\n\t"                                        \
            "lahf\n\t"                                                    \
            "seto %%al"                                                   \
            : "=&a"(rax), [a] "+r"(a)                                     \
            : "c"(count)                                                  \
            : "cc");                                                      \
        return {(U64)a, hostFlagWord(rax)};                               \
    }

DEFINE_HOST_SHIFT(hostShl, "shl")
DEFINE_HOST_SHIFT(hostShr, "shr")
DEFINE_HOST_SHIFT(hostSar, "sar")
DEFINE_HOST_SHIFT(hostRol, "rol")
DEFINE_HOST_SHIFT(hostRor, "ror")

Uop
makeUop(UopOp op, unsigned size)
{
    Uop u;
    u.op = op;
    u.size = (U8)size;
    u.rd = REG_temp0;
    u.ra = REG_rax;
    u.rb = REG_rbx;
    u.setflags = SETFLAG_ALL;
    return u;
}

/** Interesting operand corpus: corners plus random values. */
std::vector<U64>
operandCorpus()
{
    std::vector<U64> v = {
        0, 1, 2, 0x7f, 0x80, 0xff, 0x100, 0x7fff, 0x8000, 0xffff,
        0x7fffffff, 0x80000000, 0xffffffff, 0x100000000ULL,
        0x7fffffffffffffffULL, 0x8000000000000000ULL, ~0ULL,
    };
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 40; i++)
        v.push_back(rng.next());
    return v;
}

class BinopVsHost : public ::testing::TestWithParam<unsigned> {};

template <typename HostFn>
void
checkBinop(UopOp op, unsigned size, HostFn host, U16 defined_flags)
{
    Uop u = makeUop(op, size);
    auto corpus = operandCorpus();
    for (U64 a : corpus) {
        for (U64 b : corpus) {
            UopOutcome sim = executeUop(u, a, b, 0);
            HostOut ref;
            switch (size) {
              case 1: ref = host.template operator()<U8>(a, b); break;
              case 2: ref = host.template operator()<U16>(a, b); break;
              case 4: ref = host.template operator()<U32>(a, b); break;
              default: ref = host.template operator()<U64>(a, b); break;
            }
            ASSERT_EQ(sim.value, ref.value & byteMask(size))
                << uopInfo(op).name << " size=" << size
                << " a=" << std::hex << a << " b=" << b;
            ASSERT_EQ(sim.flags & defined_flags, ref.flags & defined_flags)
                << uopInfo(op).name << " size=" << size
                << " a=" << std::hex << a << " b=" << b;
        }
    }
}

struct AddFn
{
    template <typename T> HostOut operator()(U64 a, U64 b) const
    { return hostAdd<T>(a, b); }
};
struct SubFn
{
    template <typename T> HostOut operator()(U64 a, U64 b) const
    { return hostSub<T>(a, b); }
};
struct AndFn
{
    template <typename T> HostOut operator()(U64 a, U64 b) const
    { return hostAnd<T>(a, b); }
};
struct OrFn
{
    template <typename T> HostOut operator()(U64 a, U64 b) const
    { return hostOr<T>(a, b); }
};
struct XorFn
{
    template <typename T> HostOut operator()(U64 a, U64 b) const
    { return hostXor<T>(a, b); }
};

TEST_P(BinopVsHost, Add)
{
    checkBinop(UopOp::Add, GetParam(), AddFn{}, ALL_FLAGS);
}

TEST_P(BinopVsHost, Sub)
{
    checkBinop(UopOp::Sub, GetParam(), SubFn{}, ALL_FLAGS);
}

// AF is architecturally undefined for the logical ops.
TEST_P(BinopVsHost, And)
{
    checkBinop(UopOp::And, GetParam(), AndFn{}, ALL_FLAGS & ~FLAG_AF);
}

TEST_P(BinopVsHost, Or)
{
    checkBinop(UopOp::Or, GetParam(), OrFn{}, ALL_FLAGS & ~FLAG_AF);
}

TEST_P(BinopVsHost, Xor)
{
    checkBinop(UopOp::Xor, GetParam(), XorFn{}, ALL_FLAGS & ~FLAG_AF);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, BinopVsHost,
                         ::testing::Values(1u, 2u, 4u, 8u));

class CarryopVsHost
    : public ::testing::TestWithParam<std::tuple<unsigned, bool>> {};

TEST_P(CarryopVsHost, AdcSbb)
{
    auto [size, carry] = GetParam();
    Uop adc = makeUop(UopOp::Adc, size);
    adc.rf = REG_cf;
    Uop sbb = makeUop(UopOp::Sbb, size);
    sbb.rf = REG_cf;
    U16 cin = carry ? FLAG_CF : 0;
    auto corpus = operandCorpus();
    for (U64 a : corpus) {
        for (U64 b : corpus) {
            UopOutcome s1 = executeUop(adc, a, b, 0, cin);
            UopOutcome s2 = executeUop(sbb, a, b, 0, cin);
            HostOut r1, r2;
            switch (size) {
              case 1:
                r1 = hostAdc<U8>(a, b, carry);
                r2 = hostSbb<U8>(a, b, carry);
                break;
              case 2:
                r1 = hostAdc<U16>(a, b, carry);
                r2 = hostSbb<U16>(a, b, carry);
                break;
              case 4:
                r1 = hostAdc<U32>(a, b, carry);
                r2 = hostSbb<U32>(a, b, carry);
                break;
              default:
                r1 = hostAdc<U64>(a, b, carry);
                r2 = hostSbb<U64>(a, b, carry);
                break;
            }
            ASSERT_EQ(s1.value, r1.value & byteMask(size));
            ASSERT_EQ(s1.flags & ALL_FLAGS, r1.flags);
            ASSERT_EQ(s2.value, r2.value & byteMask(size));
            ASSERT_EQ(s2.flags & ALL_FLAGS, r2.flags);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCarry, CarryopVsHost,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Bool()));

class ShiftVsHost : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShiftVsHost, ShlShrSar)
{
    unsigned size = GetParam();
    struct Case { UopOp op; HostOut (*h8)(U64, U8); HostOut (*h16)(U64, U8);
                  HostOut (*h32)(U64, U8); HostOut (*h64)(U64, U8); };
    Case cases[] = {
        {UopOp::Shl, hostShl<U8>, hostShl<U16>, hostShl<U32>, hostShl<U64>},
        {UopOp::Shr, hostShr<U8>, hostShr<U16>, hostShr<U32>, hostShr<U64>},
        {UopOp::Sar, hostSar<U8>, hostSar<U16>, hostSar<U32>, hostSar<U64>},
    };
    auto corpus = operandCorpus();
    for (const Case &c : cases) {
        Uop u = makeUop(c.op, size);
        u.rf = REG_cf;
        for (U64 a : corpus) {
            for (U8 count : {0, 1, 2, 7, 8, 15, 31, 32, 63}) {
                UopOutcome sim = executeUop(u, a, count, 0, 0);
                HostOut ref;
                switch (size) {
                  case 1: ref = c.h8(a, count); break;
                  case 2: ref = c.h16(a, count); break;
                  case 4: ref = c.h32(a, count); break;
                  default: ref = c.h64(a, count); break;
                }
                unsigned masked = count & ((size == 8) ? 63 : 31);
                ASSERT_EQ(sim.value, ref.value & byteMask(size))
                    << uopInfo(c.op).name << " size=" << size << " a="
                    << std::hex << a << " count=" << std::dec << (int)count;
                if (masked == 0)
                    continue;  // flags pass through; host preserved too
                // OF is only defined for count 1; AF always undefined.
                U16 defined = ALL_FLAGS & ~FLAG_AF;
                if (masked != 1)
                    defined &= ~FLAG_OF;
                // SHL/SHR CF is undefined once the count exceeds the
                // operand width (AMD and Intel silicon differ here).
                if (masked >= size * 8)
                    defined &= ~FLAG_CF;
                ASSERT_EQ(sim.flags & defined, ref.flags & defined)
                    << uopInfo(c.op).name << " size=" << size << " a="
                    << std::hex << a << " count=" << std::dec << (int)count;
            }
        }
    }
}

TEST_P(ShiftVsHost, RotateValuesAndCarry)
{
    unsigned size = GetParam();
    auto corpus = operandCorpus();
    for (UopOp op : {UopOp::Rol, UopOp::Ror}) {
        Uop u = makeUop(op, size);
        u.rf = REG_cf;
        u.setflags = SETFLAG_CF | SETFLAG_OF;
        for (U64 a : corpus) {
            for (U8 count : {0, 1, 3, 8, 16, 31, 32, 63}) {
                UopOutcome sim = executeUop(u, a, count, 0, 0);
                HostOut ref;
                switch (size) {
                  case 1:
                    ref = (op == UopOp::Rol) ? hostRol<U8>(a, count)
                                             : hostRor<U8>(a, count);
                    break;
                  case 2:
                    ref = (op == UopOp::Rol) ? hostRol<U16>(a, count)
                                             : hostRor<U16>(a, count);
                    break;
                  case 4:
                    ref = (op == UopOp::Rol) ? hostRol<U32>(a, count)
                                             : hostRor<U32>(a, count);
                    break;
                  default:
                    ref = (op == UopOp::Rol) ? hostRol<U64>(a, count)
                                             : hostRor<U64>(a, count);
                    break;
                }
                ASSERT_EQ(sim.value, ref.value & byteMask(size));
                unsigned masked = count & ((size == 8) ? 63 : 31);
                if (masked % (size * 8) != 0) {
                    ASSERT_EQ(sim.flags & FLAG_CF, ref.flags & FLAG_CF)
                        << uopInfo(op).name << " size=" << size
                        << " count=" << (int)count;
                }
                if (masked == 1) {
                    ASSERT_EQ(sim.flags & FLAG_OF, ref.flags & FLAG_OF);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, ShiftVsHost,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(ImulVsHost, TwoOperandForms)
{
    // imul r,r only exists for 16/32/64-bit operands.
    auto corpus = operandCorpus();
    for (unsigned size : {2u, 4u, 8u}) {
        Uop u = makeUop(UopOp::Mull, size);
        for (U64 a : corpus) {
            for (U64 b : corpus) {
                UopOutcome sim = executeUop(u, a, b, 0);
                HostOut ref;
                switch (size) {
                  case 2: ref = hostImul2<U16>(a, b); break;
                  case 4: ref = hostImul2<U32>(a, b); break;
                  default: ref = hostImul2<U64>(a, b); break;
                }
                ASSERT_EQ(sim.value, ref.value & byteMask(size));
                // Only CF and OF are defined for imul.
                ASSERT_EQ(sim.flags & (FLAG_CF | FLAG_OF),
                          ref.flags & (FLAG_CF | FLAG_OF))
                    << "size=" << size << " a=" << std::hex << a
                    << " b=" << b;
            }
        }
    }
}

TEST(Divide, UnsignedQuotientRemainder)
{
    Uop q = makeUop(UopOp::DivQ, 8);
    Uop r = makeUop(UopOp::DivR, 8);
    Rng rng(99);
    for (int i = 0; i < 2000; i++) {
        U64 lo = rng.next();
        U64 d = rng.next() | 1;  // nonzero
        U64 hi = d ? rng.next() % d : 0;  // quotient fits
        UopOutcome oq = executeUop(q, lo, d, hi);
        UopOutcome orr = executeUop(r, lo, d, hi);
        ASSERT_EQ(oq.fault, GuestFault::None);
        unsigned __int128 dividend = ((unsigned __int128)hi << 64) | lo;
        ASSERT_EQ(oq.value, (U64)(dividend / d));
        ASSERT_EQ(orr.value, (U64)(dividend % d));
    }
}

TEST(Divide, FaultsOnZeroAndOverflow)
{
    Uop q = makeUop(UopOp::DivQ, 8);
    EXPECT_EQ(executeUop(q, 5, 0, 0).fault, GuestFault::DivideError);
    // hi >= divisor => quotient overflow.
    EXPECT_EQ(executeUop(q, 0, 3, 7).fault, GuestFault::DivideError);
    Uop qs = makeUop(UopOp::DivQs, 8);
    EXPECT_EQ(executeUop(qs, 5, 0, 0).fault, GuestFault::DivideError);
    // INT64_MIN / -1 overflows.
    EXPECT_EQ(executeUop(qs, 0x8000000000000000ULL, ~0ULL,
                         0xffffffffffffffffULL).fault,
              GuestFault::DivideError);
}

TEST(Divide, SignedMatchesC)
{
    Uop q = makeUop(UopOp::DivQs, 8);
    Uop r = makeUop(UopOp::DivRs, 8);
    Rng rng(1234);
    for (int i = 0; i < 2000; i++) {
        S64 a = (S64)rng.next() >> (rng.below(32));
        S64 d = (S64)(rng.next() >> rng.below(48));
        if (d == 0 || (a == INT64_MIN && d == -1))
            continue;
        U64 hi = (a < 0) ? ~0ULL : 0;  // sign extension (cqo)
        UopOutcome oq = executeUop(q, (U64)a, (U64)d, hi);
        UopOutcome orr = executeUop(r, (U64)a, (U64)d, hi);
        ASSERT_EQ(oq.fault, GuestFault::None) << a << "/" << d;
        ASSERT_EQ((S64)oq.value, a / d);
        ASSERT_EQ((S64)orr.value, a % d);
    }
}

TEST(CondCodes, MatchesX86Semantics)
{
    // Exhaustive: all 16 conditions against all flag combinations.
    for (unsigned f = 0; f < 0x1000; f++) {
        U16 flags = (U16)f;
        bool cf = flags & FLAG_CF, zf = flags & FLAG_ZF;
        bool sf = flags & FLAG_SF, of = flags & FLAG_OF;
        bool pf = flags & FLAG_PF;
        EXPECT_EQ(evaluateCond(COND_o, flags), of);
        EXPECT_EQ(evaluateCond(COND_b, flags), cf);
        EXPECT_EQ(evaluateCond(COND_e, flags), zf);
        EXPECT_EQ(evaluateCond(COND_be, flags), cf || zf);
        EXPECT_EQ(evaluateCond(COND_s, flags), sf);
        EXPECT_EQ(evaluateCond(COND_p, flags), pf);
        EXPECT_EQ(evaluateCond(COND_l, flags), sf != of);
        EXPECT_EQ(evaluateCond(COND_le, flags), zf || (sf != of));
        // Negations are exact complements.
        for (int c = 0; c < 16; c += 2) {
            EXPECT_NE(evaluateCond((CondCode)c, flags),
                      evaluateCond((CondCode)(c + 1), flags));
        }
    }
}

TEST(SelSet, CmovAndSetcc)
{
    Uop sel = makeUop(UopOp::Sel, 8);
    sel.cond = COND_e;
    sel.rf = REG_zaps;
    EXPECT_EQ(executeUop(sel, 111, 222, 0, FLAG_ZF).value, 222ULL);
    EXPECT_EQ(executeUop(sel, 111, 222, 0, 0).value, 111ULL);

    Uop set = makeUop(UopOp::Set, 8);
    set.cond = COND_b;
    set.rf = REG_cf;
    EXPECT_EQ(executeUop(set, 0, 0, 0, FLAG_CF).value, 1ULL);
    EXPECT_EQ(executeUop(set, 0, 0, 0, 0).value, 0ULL);
}

TEST(CollCC, MergesThreeGroups)
{
    Uop u = makeUop(UopOp::CollCC, 8);
    U16 zaps_src = FLAG_ZF | FLAG_SF | FLAG_CF;  // CF here must be ignored
    U16 cf_src = FLAG_CF | FLAG_ZF;              // ZF here must be ignored
    U16 of_src = FLAG_OF | FLAG_CF;
    UopOutcome out = executeUop(u, 0, 0, 0, 0, zaps_src, cf_src, of_src);
    EXPECT_EQ(out.flags, FLAG_ZF | FLAG_SF | FLAG_CF | FLAG_OF);
}

TEST(Branches, DirectAndConditional)
{
    Uop bru = makeUop(UopOp::Bru, 8);
    bru.imm = 0x1000;
    bru.imm2 = 0x1005;
    UopOutcome out = executeUop(bru, 0, 0, 0);
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.value, 0x1000ULL);

    Uop br = makeUop(UopOp::BrCC, 8);
    br.cond = COND_ne;
    br.rf = REG_zaps;
    br.imm = 0x2000;
    br.imm2 = 0x2006;
    out = executeUop(br, 0, 0, 0, 0);
    EXPECT_TRUE(out.taken);
    EXPECT_EQ(out.value, 0x2000ULL);
    out = executeUop(br, 0, 0, 0, FLAG_ZF);
    EXPECT_FALSE(out.taken);
    EXPECT_EQ(out.value, 0x2006ULL);

    Uop jmp = makeUop(UopOp::Jmp, 8);
    out = executeUop(jmp, 0xdead0000, 0, 0);
    EXPECT_EQ(out.value, 0xdead0000ULL);
}

TEST(Misc, BswapBtBsfMerge)
{
    Uop bs = makeUop(UopOp::Bswap, 8);
    EXPECT_EQ(executeUop(bs, 0x0102030405060708ULL, 0, 0).value,
              0x0807060504030201ULL);
    Uop bs4 = makeUop(UopOp::Bswap, 4);
    EXPECT_EQ(executeUop(bs4, 0x01020304ULL, 0, 0).value, 0x04030201ULL);

    Uop bt = makeUop(UopOp::Bt, 8);
    EXPECT_EQ(executeUop(bt, 0b100, 2, 0).flags & FLAG_CF, FLAG_CF);
    EXPECT_EQ(executeUop(bt, 0b100, 3, 0).flags & FLAG_CF, 0);
    Uop bts = makeUop(UopOp::Bts, 8);
    EXPECT_EQ(executeUop(bts, 0, 5, 0).value, 32ULL);

    Uop bsf = makeUop(UopOp::Bsf, 8);
    EXPECT_EQ(executeUop(bsf, 0x80, 0, 0).value, 7ULL);
    EXPECT_EQ(executeUop(bsf, 0, 0, 0).flags & FLAG_ZF, FLAG_ZF);
    Uop bsr = makeUop(UopOp::Bsr, 8);
    EXPECT_EQ(executeUop(bsr, 0x80, 0, 0).value, 7ULL);

    Uop merge = makeUop(UopOp::MergeLo, 1);
    EXPECT_EQ(executeUop(merge, 0x1122334455667788ULL, 0xAB, 0).value,
              0x11223344556677ABULL);
    Uop merge2 = makeUop(UopOp::MergeLo, 2);
    EXPECT_EQ(executeUop(merge2, 0x1122334455667788ULL, 0xABCD, 0).value,
              0x112233445566ABCDULL);
}

TEST(Fp, ScalarDoubleOps)
{
    auto d2u = [](double d) { return std::bit_cast<U64>(d); };
    auto u2d = [](U64 u) { return std::bit_cast<double>(u); };
    Uop add = makeUop(UopOp::Addf, 8);
    EXPECT_DOUBLE_EQ(u2d(executeUop(add, d2u(1.5), d2u(2.25), 0).value), 3.75);
    Uop mul = makeUop(UopOp::Mulf, 8);
    EXPECT_DOUBLE_EQ(u2d(executeUop(mul, d2u(3.0), d2u(-2.0), 0).value), -6.0);
    Uop div = makeUop(UopOp::Divf, 8);
    EXPECT_DOUBLE_EQ(u2d(executeUop(div, d2u(1.0), d2u(4.0), 0).value), 0.25);
    Uop sqrt = makeUop(UopOp::Sqrtf, 8);
    EXPECT_DOUBLE_EQ(u2d(executeUop(sqrt, d2u(9.0), 0, 0).value), 3.0);
    Uop cvt = makeUop(UopOp::Cvtif, 8);
    EXPECT_DOUBLE_EQ(u2d(executeUop(cvt, (U64)(-7), 0, 0).value), -7.0);
    Uop cvt2 = makeUop(UopOp::Cvtfi, 8);
    EXPECT_EQ((S64)executeUop(cvt2, d2u(-7.9), 0, 0).value, -7);

    Uop cmp = makeUop(UopOp::Cmpf, 8);
    EXPECT_EQ(executeUop(cmp, d2u(1.0), d2u(2.0), 0).flags, FLAG_CF);
    EXPECT_EQ(executeUop(cmp, d2u(2.0), d2u(1.0), 0).flags, 0);
    EXPECT_EQ(executeUop(cmp, d2u(2.0), d2u(2.0), 0).flags, FLAG_ZF);
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(executeUop(cmp, d2u(nan), d2u(1.0), 0).flags,
              FLAG_ZF | FLAG_PF | FLAG_CF);
}

TEST(Misc, MemAddrGeneration)
{
    Uop ld = makeUop(UopOp::Ld, 8);
    ld.imm = 0x10;
    ld.scale = 3;
    EXPECT_EQ(uopMemAddr(ld, 0x1000, 4), 0x1000ULL + (4ULL << 3) + 0x10);
    ld.rb_imm = true;
    ld.imm = -8;
    EXPECT_EQ(uopMemAddr(ld, 0x1000, 999), 0xff8ULL);
}

TEST(Misc, ChkFiresOnCondition)
{
    Uop chk = makeUop(UopOp::Chk, 8);
    chk.cond = COND_e;
    chk.rf = REG_zaps;
    EXPECT_EQ(executeUop(chk, 0, 0, 0, FLAG_ZF).fault,
              GuestFault::MicrocodeCheck);
    EXPECT_EQ(executeUop(chk, 0, 0, 0, 0).fault, GuestFault::None);
}

TEST(Misc, MovFlagsTransfers)
{
    Uop rcc = makeUop(UopOp::MovRcc, 8);
    rcc.rf = REG_zaps;
    EXPECT_EQ(executeUop(rcc, 0, 0, 0, FLAG_ZF | FLAG_CF).value,
              (U64)(FLAG_ZF | FLAG_CF | 0x2));
    Uop ccr = makeUop(UopOp::MovCcr, 8);
    UopOutcome out = executeUop(ccr, 0, FLAG_ZF | FLAG_OF | 0x9000, 0);
    EXPECT_EQ(out.flags, FLAG_ZF | FLAG_OF);
}

}  // namespace
}  // namespace ptl
