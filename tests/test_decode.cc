/**
 * Tests for the x86 byte decoder and the x86->uop translator, using the
 * repository assembler as the encoding source (round-trip property:
 * everything the assembler emits must decode to the right structure).
 */

#include <gtest/gtest.h>

#include "decode/translate.h"
#include "decode/x86decode.h"
#include "xasm/assembler.h"

namespace ptl {
namespace {

X86Insn
decodeFirst(void (*body)(Assembler &), U64 base = 0x400000)
{
    Assembler a(base);
    body(a);
    std::vector<U8> code = a.finalize();
    return decodeX86(code.data(), code.size(), base);
}

TEST(Decode, MovRegRegFields)
{
    X86Insn d = decodeFirst([](Assembler &a) { a.mov(R::rax, R::rbx); });
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.length, 3);
    EXPECT_TRUE(d.rex_w);
    EXPECT_EQ(d.opcode, 0x89);
    EXPECT_EQ(d.reg(), (int)R::rbx);
    EXPECT_EQ(d.rm(), (int)R::rax);
    EXPECT_FALSE(d.rmIsMem());
}

TEST(Decode, HighRegistersViaRex)
{
    X86Insn d = decodeFirst([](Assembler &a) { a.mov(R::r8, R::r15); });
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.reg(), 15);
    EXPECT_EQ(d.rm(), 8);
}

TEST(Decode, MemorySibForms)
{
    X86Insn d = decodeFirst([](Assembler &a) {
        a.mov(R::rdx, Mem::idx(R::rax, R::rcx, 4, 0x30));
    });
    EXPECT_TRUE(d.valid);
    EXPECT_TRUE(d.rmIsMem());
    EXPECT_TRUE(d.has_sib);
    EXPECT_EQ(d.sibBase(), (int)R::rax);
    EXPECT_EQ(d.sibIndex(), (int)R::rcx);
    EXPECT_EQ(d.sibScale(), 4);
    EXPECT_EQ(d.disp, 0x30);
}

TEST(Decode, DispSizes)
{
    X86Insn d8 =
        decodeFirst([](Assembler &a) { a.mov(R::rax, Mem::at(R::rbx, -4)); });
    EXPECT_EQ(d8.disp, -4);
    X86Insn d32 = decodeFirst(
        [](Assembler &a) { a.mov(R::rax, Mem::at(R::rbx, 0x12345)); });
    EXPECT_EQ(d32.disp, 0x12345);
}

TEST(Decode, ImmediateForms)
{
    X86Insn imm8 = decodeFirst([](Assembler &a) { a.add(R::rax, 5); });
    EXPECT_EQ(imm8.opcode, 0x83);
    EXPECT_EQ((S64)imm8.imm, 5);
    X86Insn imm32 = decodeFirst([](Assembler &a) { a.add(R::rax, 1000); });
    EXPECT_EQ(imm32.opcode, 0x81);
    EXPECT_EQ((S64)imm32.imm, 1000);
    X86Insn neg = decodeFirst([](Assembler &a) { a.cmp(R::rcx, -1); });
    EXPECT_EQ((S64)neg.imm, -1);
    X86Insn movabs = decodeFirst(
        [](Assembler &a) { a.movImm64(R::rdx, 0xdeadbeefcafebabeULL); });
    EXPECT_EQ(movabs.imm, 0xdeadbeefcafebabeULL);
    EXPECT_EQ(movabs.imm_bytes, 8);
}

TEST(Decode, PrefixesDetected)
{
    X86Insn locked = decodeFirst(
        [](Assembler &a) { a.lockXadd(Mem::at(R::rdi), R::rax); });
    EXPECT_TRUE(locked.prefix_lock);
    EXPECT_TRUE(locked.is_0f);
    EXPECT_EQ(locked.opcode, 0xC1);
    X86Insn sd = decodeFirst(
        [](Assembler &a) { a.movsd(X::xmm1, Mem::at(R::rax)); });
    EXPECT_TRUE(sd.prefix_f2);
    X86Insn rep = decodeFirst([](Assembler &a) { a.repMovsb(); });
    EXPECT_TRUE(rep.prefix_f3);
    EXPECT_EQ(rep.opcode, 0xA4);
}

TEST(Decode, UnknownOpcodeInvalid)
{
    U8 bytes[] = {0x0F, 0xFF, 0x00};
    X86Insn d = decodeX86(bytes, sizeof(bytes), 0x1000);
    EXPECT_FALSE(d.valid);
    EXPECT_GT(d.length, 0);  // undecodable, not truncated
}

TEST(Decode, TruncatedInstruction)
{
    // movabs needs 10 bytes; give it 4.
    Assembler a(0);
    a.movImm64(R::rax, 0x1122334455667788ULL);
    std::vector<U8> code = a.finalize();
    X86Insn d = decodeX86(code.data(), 4, 0);
    EXPECT_FALSE(d.valid);
    EXPECT_EQ(d.length, 0);  // truncation marker
}

TEST(Decode, EveryAssemblerFormDecodes)
{
    // Emit a long straight-line stream of one of each supported
    // instruction and decode the whole stream back; every instruction
    // must decode valid with the correct total length.
    Assembler a(0x400000);
    a.mov(R::rax, R::rbx);
    a.mov(R::rcx, 0x1234);
    a.movImm64(R::rdx, ~0ULL);
    a.mov(R::rsi, Mem::at(R::rsp, 8));
    a.mov(Mem::at(R::rbp, -16), R::rdi);
    a.mov32(R::r9, Mem::idx(R::rbx, R::rcx, 8, 4));
    a.mov8(Mem::at(R::rdx), R::rax);
    a.movzx8(R::rax, Mem::at(R::rsi));
    a.movzx16(R::rbx, Mem::at(R::rsi, 2));
    a.movsx8(R::rcx, Mem::at(R::rsi));
    a.movsxd(R::rdx, R::rax);
    a.lea(R::r8, Mem::idx(R::rax, R::rbx, 2, 100));
    a.add(R::rax, R::rbx);
    a.add(R::rax, 77);
    a.add(R::rcx, Mem::at(R::rdx));
    a.add(Mem::at(R::rdx), R::rcx);
    a.sub(R::rax, -5);
    a.adc(R::rax, R::rbx);
    a.sbb(R::rcx, R::rdx);
    a.and_(R::rax, 0xFF);
    a.or_(R::rbx, R::rcx);
    a.xor_(R::rdx, R::rdx);
    a.cmp(R::rax, R::rbx);
    a.cmp(R::rax, Mem::at(R::rsi));
    a.test(R::rax, R::rax);
    a.test(R::rcx, 0x10);
    a.inc(R::rax);
    a.dec(R::rbx);
    a.inc(Mem::at(R::rdi));
    a.neg(R::rcx);
    a.not_(R::rdx);
    a.imul(R::rax, R::rbx);
    a.imul(R::rcx, R::rdx, 10);
    a.mul(R::rbx);
    a.div(R::rcx);
    a.idiv(R::rsi);
    a.shl(R::rax, 3);
    a.shrCl(R::rbx);
    a.sar(R::rcx, 63);
    a.rol(R::rdx, 1);
    a.ror(R::rsi, 7);
    a.bsf(R::rax, R::rbx);
    a.bsr(R::rcx, R::rdx);
    a.bswap(R::rax);
    a.push(R::rbp);
    a.pop(R::rbp);
    a.pushfq();
    a.popfq();
    a.setcc(COND_e, R::rax);
    a.cmovcc(COND_b, R::rbx, R::rcx);
    a.xchg(R::rax, Mem::at(R::rsi));
    a.lockXadd(Mem::at(R::rdi), R::rbx);
    a.lockCmpxchg(Mem::at(R::rdi), R::rcx);
    a.lockAdd(Mem::at(R::rdi), R::rdx);
    a.lockInc(Mem::at(R::rdi));
    a.cld();
    a.nop();
    a.movsd(X::xmm0, Mem::at(R::rax));
    a.movsd(Mem::at(R::rbx), X::xmm1);
    a.addsd(X::xmm0, X::xmm1);
    a.mulsd(X::xmm2, X::xmm3);
    a.comisd(X::xmm0, X::xmm1);
    a.cvtsi2sd(X::xmm0, R::rax);
    a.cvttsd2si(R::rbx, X::xmm0);
    a.movqXR(X::xmm4, R::rcx);
    a.movqRX(R::rdx, X::xmm4);
    a.fldQ(Mem::at(R::rax));
    a.fstpQ(Mem::at(R::rbx));
    a.faddp();
    a.fmulp();
    a.rdtsc();
    a.cpuid();
    std::vector<U8> code = a.finalize();

    size_t pos = 0;
    int count = 0;
    while (pos < code.size()) {
        X86Insn d = decodeX86(code.data() + pos,
                              std::min<size_t>(code.size() - pos, 15),
                              0x400000 + pos);
        ASSERT_TRUE(d.valid)
            << "undecodable at offset " << pos << ": " << d.toString();
        ASSERT_GT(d.length, 0);
        pos += d.length;
        count++;
    }
    EXPECT_EQ(pos, code.size());
    EXPECT_GT(count, 60);
}

// ---------------------------------------------------------------------
// Translator structure tests
// ---------------------------------------------------------------------

std::vector<Uop>
translateFirst(void (*body)(Assembler &), U64 base = 0x400000)
{
    Assembler a(base);
    body(a);
    std::vector<U8> code = a.finalize();
    X86Insn d = decodeX86(code.data(), code.size(), base);
    std::vector<Uop> uops;
    translateOne(d, uops);
    return uops;
}

TEST(Translate, MovRegIsOneUop)
{
    auto uops = translateFirst([](Assembler &a) { a.mov(R::rax, R::rbx); });
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].op, UopOp::Mov);
    EXPECT_TRUE(uops[0].som);
    EXPECT_TRUE(uops[0].eom);
    EXPECT_EQ(uops[0].rd, REG_rax);
    EXPECT_EQ(uops[0].rb, REG_rbx);
}

TEST(Translate, RmwIsLoadOpStore)
{
    auto uops =
        translateFirst([](Assembler &a) { a.add(Mem::at(R::rdx), R::rcx); });
    ASSERT_EQ(uops.size(), 3u);
    EXPECT_EQ(uops[0].op, UopOp::Ld);
    EXPECT_EQ(uops[1].op, UopOp::Add);
    EXPECT_EQ(uops[1].setflags, SETFLAG_ALL);
    EXPECT_EQ(uops[2].op, UopOp::St);
    EXPECT_TRUE(uops[0].som);
    EXPECT_TRUE(uops[2].eom);
}

TEST(Translate, LockedRmwMarksUops)
{
    auto uops =
        translateFirst([](Assembler &a) { a.lockAdd(Mem::at(R::rdi), R::rax); });
    ASSERT_EQ(uops.size(), 3u);
    EXPECT_TRUE(uops[0].locked);
    EXPECT_TRUE(uops[2].locked);
}

TEST(Translate, CallPushesReturnAddress)
{
    auto uops = translateFirst([](Assembler &a) {
        Label l = a.newLabel();
        a.call(l);
        a.bind(l);
        a.ret();
    });
    // mov t, ripseq ; st [rsp-8] ; add rsp,-8 ; bru
    ASSERT_EQ(uops.size(), 4u);
    EXPECT_EQ(uops[1].op, UopOp::St);
    EXPECT_EQ(uops[3].op, UopOp::Bru);
    EXPECT_TRUE(uops[3].hint_call);
    EXPECT_EQ((U64)uops[3].imm, 0x400005ULL);  // call is 5 bytes
    EXPECT_EQ((U64)uops[0].imm, 0x400005ULL);  // pushed return address
}

TEST(Translate, JccConsumesProducerFlags)
{
    Assembler a(0x400000);
    a.cmp(R::rax, R::rbx);
    Label l = a.newLabel();
    a.jcc(COND_e, l);
    a.bind(l);
    std::vector<U8> code = a.finalize();

    std::vector<Uop> uops;
    Translator tr(uops);
    X86Insn d1 = decodeX86(code.data(), code.size(), 0x400000);
    EXPECT_EQ(tr.translate(d1), BbEnd::None);
    X86Insn d2 = decodeX86(code.data() + d1.length,
                           code.size() - d1.length, 0x400000 + d1.length);
    EXPECT_EQ(tr.translate(d2), BbEnd::CondBranch);
    // The branch must reference the cmp's destination temp for flags.
    ASSERT_EQ(uops.size(), 2u);
    EXPECT_EQ(uops[1].op, UopOp::BrCC);
    EXPECT_EQ(uops[1].rf, uops[0].rd);
}

TEST(Translate, SplitFlagGroupsForceCollcc)
{
    // inc writes ZAPS+OF but preserves CF; a following jbe (needs
    // CF+ZAPS) must see CF from the earlier cmp -> collcc required.
    Assembler a(0x400000);
    a.cmp(R::rax, R::rbx);   // produces all flags
    a.inc(R::rcx);           // ZAPS|OF now from inc, CF still from cmp
    Label l = a.newLabel();
    a.jcc(COND_be, l);
    a.bind(l);
    std::vector<U8> code = a.finalize();

    std::vector<Uop> uops;
    Translator tr(uops);
    size_t pos = 0;
    while (pos < code.size()) {
        X86Insn d = decodeX86(code.data() + pos, code.size() - pos,
                              0x400000 + pos);
        tr.translate(d);
        pos += d.length;
    }
    bool saw_collcc = false;
    for (const Uop &u : uops)
        saw_collcc |= (u.op == UopOp::CollCC);
    EXPECT_TRUE(saw_collcc);
}

TEST(Translate, RepMovsbIsSelfLoopingBlock)
{
    auto uops = translateFirst([](Assembler &a) { a.repMovsb(); });
    // Two pseudo-ops: [test rcx; brcc.e exit] [ld; st; rsi++; rdi++;
    // rcx--; bru self]
    ASSERT_GE(uops.size(), 7u);
    EXPECT_EQ(uops[1].op, UopOp::BrCC);
    EXPECT_TRUE(uops[1].eom);
    EXPECT_EQ((U64)uops[1].imm, 0x400002ULL);     // exit past 2-byte insn
    EXPECT_EQ(uops.back().op, UopOp::Bru);
    EXPECT_EQ((U64)uops.back().imm, 0x400000ULL);  // loops to itself
    int som_count = 0;
    for (const Uop &u : uops)
        som_count += u.som;
    EXPECT_EQ(som_count, 2);
}

TEST(Translate, AssistsForSystemOps)
{
    auto check = [](void (*body)(Assembler &), AssistId id) {
        auto uops = translateFirst(body);
        ASSERT_FALSE(uops.empty());
        const Uop &last = uops.back();
        EXPECT_EQ(last.op, UopOp::Assist);
        EXPECT_EQ(last.assist(), id);
    };
    check([](Assembler &a) { a.syscall(); }, AssistId::Syscall);
    check([](Assembler &a) { a.sysret(); }, AssistId::Sysret);
    check([](Assembler &a) { a.hypercall(); }, AssistId::Hypercall);
    check([](Assembler &a) { a.ptlcall(); }, AssistId::Ptlcall);
    check([](Assembler &a) { a.hlt(); }, AssistId::Hlt);
    check([](Assembler &a) { a.rdtsc(); }, AssistId::Rdtsc);
    check([](Assembler &a) { a.iretq(); }, AssistId::Iret);
    check([](Assembler &a) { a.cli(); }, AssistId::Cli);
    check([](Assembler &a) { a.sti(); }, AssistId::Sti);
    check([](Assembler &a) { a.ud2(); }, AssistId::InvalidOpcode);
}

TEST(Translate, ByteOpsMergePartialRegisters)
{
    auto uops =
        translateFirst([](Assembler &a) { a.mov8(R::rax, Mem::at(R::rsi)); });
    ASSERT_EQ(uops.size(), 2u);
    EXPECT_EQ(uops[0].op, UopOp::Ld);
    EXPECT_EQ(uops[0].size, 1);
    EXPECT_EQ(uops[1].op, UopOp::MergeLo);
    EXPECT_EQ(uops[1].rd, REG_rax);
}

TEST(Translate, IncPreservesCarryGroup)
{
    auto uops = translateFirst([](Assembler &a) { a.inc(R::rax); });
    ASSERT_EQ(uops.size(), 1u);
    EXPECT_EQ(uops[0].setflags, SETFLAG_ZAPS | SETFLAG_OF);
}

}  // namespace
}  // namespace ptl
