/**
 * Out-of-order core tests. The strongest property here mirrors the
 * paper's co-simulation self-validation: every program runs with the
 * commit checker enabled (each committed uop is re-verified against an
 * in-order architectural replay), and a parameterized equivalence
 * suite runs identical guest programs on the functional engine and the
 * OOO pipeline, requiring bit-identical final architectural state.
 */

#include <gtest/gtest.h>

#include "guest_harness.h"

namespace ptl {
namespace {

SimConfig
oooConfig()
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.commit_checker = true;
    return cfg;
}

// ---------------------------------------------------------------------
// Equivalence: functional engine vs OOO pipeline
// ---------------------------------------------------------------------

struct Program
{
    const char *name;
    void (*body)(Assembler &);
};

void
progArithLoop(Assembler &a)
{
    a.mov(R::rax, 1);
    a.mov(R::rcx, 20);
    Label top = a.label();
    a.imul(R::rax, R::rcx);
    a.add(R::rax, 7);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

void
progMemoryChurn(Assembler &a)
{
    // Write then re-read a table with data-dependent addressing.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 0);
    Label fill = a.label();
    a.mov(R::rax, R::rcx);
    a.imul(R::rax, R::rax, 2654435761);
    a.mov(Mem::idx(R::rbx, R::rcx, 8), R::rax);
    a.inc(R::rcx);
    a.cmp(R::rcx, 256);
    a.jcc(COND_ne, fill);
    a.mov(R::rdx, 0);
    a.mov(R::rcx, 0);
    Label sum = a.label();
    a.mov(R::rax, Mem::idx(R::rbx, R::rcx, 8));
    a.add(R::rdx, R::rax);
    a.and_(R::rax, 255);
    a.add(R::rdx, Mem::idx(R::rbx, R::rax, 8));  // dependent load
    a.inc(R::rcx);
    a.cmp(R::rcx, 256);
    a.jcc(COND_ne, sum);
    a.hlt();
}

void
progCallsAndStack(Assembler &a)
{
    Label fib = a.newLabel(), start = a.newLabel();
    a.jmp(start);
    // fib(rdi) -> rax, recursive.
    a.bind(fib);
    a.cmp(R::rdi, 2);
    Label recurse = a.newLabel();
    a.jcc(COND_nb, recurse);
    a.mov(R::rax, R::rdi);
    a.ret();
    a.bind(recurse);
    a.push(R::rdi);
    a.sub(R::rdi, 1);
    a.call(fib);
    a.pop(R::rdi);
    a.push(R::rax);
    a.sub(R::rdi, 2);
    a.call(fib);
    a.pop(R::rcx);
    a.add(R::rax, R::rcx);
    a.ret();
    a.bind(start);
    a.mov(R::rdi, 12);
    a.call(fib);
    a.hlt();
}

void
progFlagsTorture(Assembler &a)
{
    // adc chains, inc/dec CF preservation, setcc/cmov, rotates.
    a.mov(R::rax, 0);
    a.mov(R::rbx, 0);
    a.mov(R::rcx, 100);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.imul(R::rdx, R::rdx, 0x9E3779B9);
    a.add(R::rax, R::rdx);          // sets CF sometimes
    a.adc(R::rbx, 0);               // accumulate carries
    a.inc(R::rax);                  // preserves CF
    a.adc(R::rbx, 0);
    a.setcc(COND_s, R::rsi);
    a.add(R::rbx, R::rsi);
    a.rol(R::rax, 7);
    a.cmp(R::rdx, R::rax);
    a.cmovcc(COND_b, R::rdx, R::rax);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

void
progStringAndDiv(Assembler &a)
{
    a.movImm64(R::rdi, CoreRunner::DATA_BASE);
    a.mov(R::rax, 0x5A);
    a.mov(R::rcx, 777);
    a.cld();
    a.repStosb();
    a.movImm64(R::rsi, CoreRunner::DATA_BASE);
    a.movImm64(R::rdi, CoreRunner::DATA_BASE + 0x2000);
    a.mov(R::rcx, 777);
    a.repMovsb();
    a.movImm64(R::rax, 123456789123ULL);
    a.mov(R::rdx, 0);
    a.mov(R::rbx, 1000003);
    a.div(R::rbx);
    a.hlt();
}

void
progStoreLoadForwarding(Assembler &a)
{
    // Tight store->load dependencies through the stack.
    a.mov(R::rcx, 200);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.push(R::rcx);
    a.add(R::rax, Mem::at(R::rsp));   // forwarded from the push
    a.pop(R::rdx);
    a.mov(Mem::at(R::rsp, -16), R::rax);
    a.mov(R::rbx, Mem::at(R::rsp, -16));
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

void
progSseMix(Assembler &a)
{
    a.mov(R::rax, 3);
    a.cvtsi2sd(X::xmm0, R::rax);
    a.mov(R::rcx, 50);
    Label top = a.label();
    a.mov(R::rax, R::rcx);
    a.cvtsi2sd(X::xmm1, R::rax);
    a.mulsd(X::xmm1, X::xmm1);
    a.addsd(X::xmm0, X::xmm1);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.sqrtsd(X::xmm0, X::xmm0);
    a.cvttsd2si(R::rbx, X::xmm0);
    a.hlt();
}

const Program kPrograms[] = {
    {"arith_loop", progArithLoop},
    {"memory_churn", progMemoryChurn},
    {"calls_and_stack", progCallsAndStack},
    {"flags_torture", progFlagsTorture},
    {"string_and_div", progStringAndDiv},
    {"store_load_forwarding", progStoreLoadForwarding},
    {"sse_mix", progSseMix},
};

class OooEquivalence : public ::testing::TestWithParam<size_t>
{
};

TEST_P(OooEquivalence, MatchesFunctionalEngine)
{
    const Program &prog = kPrograms[GetParam()];

    // Reference run on the functional engine.
    GuestRunner ref;
    {
        Assembler a(GuestRunner::CODE_BASE);
        prog.body(a);
        ref.load(a);
        ref.run(2'000'000);
    }

    // Pipelined run with the commit checker armed.
    CoreRunner ooo(oooConfig());
    {
        Assembler a(CoreRunner::CODE_BASE);
        prog.body(a);
        ooo.load(a);
        ooo.start();
        ooo.run(20'000'000);
    }

    for (int r = 0; r < 16; r++) {
        if (r == (int)R::rsp)
            continue;  // compared below
        ASSERT_EQ(ooo.contexts[0]->regs[r], ref.ctx.regs[r])
            << prog.name << ": GPR " << uopRegName(r);
    }
    EXPECT_EQ(ooo.contexts[0]->regs[REG_rsp] - (CoreRunner::STACK_TOP - 64),
              ref.ctx.regs[REG_rsp] - (GuestRunner::STACK_TOP - 64))
        << prog.name << ": stack depth";
    for (int x = REG_xmm0; x <= REG_xmm15; x++)
        ASSERT_EQ(ooo.contexts[0]->regs[x], ref.ctx.regs[x])
            << prog.name << ": " << uopRegName(x);
    // Same dynamic instruction count.
    EXPECT_EQ(ooo.stats.get("core0/commit/insns"),
              ref.stats.get("commit/insns"))
        << prog.name;
    // Data region contents identical.
    for (U64 off = 0; off < 0x3000; off += 8) {
        ASSERT_EQ(ooo.readGuest(CoreRunner::DATA_BASE + off, 8),
                  ref.readGuest(GuestRunner::DATA_BASE + off, 8))
            << prog.name << " data at +" << off;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, OooEquivalence,
    ::testing::Range<size_t>(0, sizeof(kPrograms) / sizeof(kPrograms[0])),
    [](const ::testing::TestParamInfo<size_t> &pinfo) {
        return kPrograms[pinfo.param].name;
    });

// ---------------------------------------------------------------------
// Microarchitectural behaviour
// ---------------------------------------------------------------------

TEST(OooCoreTest, AchievesIlpOnIndependentOps)
{
    // A long stream of independent single-cycle ops must commit at
    // well above 1 IPC on the 3-wide K8 configuration.
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    a.mov(R::r8, 1);
    a.mov(R::r9, 2);
    a.mov(R::r10, 3);
    a.mov(R::rcx, 50);          // warm iterations amortize cold caches
    Label top = a.label();
    for (int i = 0; i < 100; i++) {
        a.add(R::r8, 5);
        a.add(R::r9, 7);
        a.add(R::r10, 9);
    }
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    U64 cycles = r.run();
    U64 insns = r.stats.get("core0/commit/insns");
    double ipc = (double)insns / (double)cycles;
    EXPECT_GT(ipc, 1.5) << "cycles=" << cycles << " insns=" << insns;
    EXPECT_EQ(r.reg(R::r8), 1 + 5 * 100 * 50ULL);
}

TEST(OooCoreTest, DependencyChainLimitsIpc)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    a.mov(R::rax, 1);
    for (int i = 0; i < 600; i++)
        a.imul(R::rax, R::rax, 3);  // serial 3-cycle chain
    a.hlt();
    r.load(a);
    r.start();
    U64 cycles = r.run();
    U64 insns = r.stats.get("core0/commit/insns");
    // Each imul takes lat_mul cycles back-to-back.
    EXPECT_GT((double)cycles / (double)insns, 2.0);
}

TEST(OooCoreTest, BranchMispredictsAreCounted)
{
    // Data-dependent unpredictable-ish branch pattern.
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    a.mov(R::rbx, 12345);
    a.mov(R::rcx, 2000);
    a.mov(R::rdx, 0);
    Label top = a.label();
    // xorshift step
    a.mov(R::rax, R::rbx);
    a.shl(R::rax, 13);
    a.xor_(R::rbx, R::rax);
    a.mov(R::rax, R::rbx);
    a.shr(R::rax, 7);
    a.xor_(R::rbx, R::rax);
    a.test(R::rbx, 1);
    Label skip = a.newLabel();
    a.jcc(COND_e, skip);
    a.inc(R::rdx);
    a.bind(skip);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run();
    EXPECT_GT(r.stats.get("core0/branches/cond"), 3000ULL);
    EXPECT_GT(r.stats.get("core0/branches/mispredicted"), 100ULL);
    // The loop-closing branch trains perfectly, so the rate is < 50%.
    EXPECT_LT(r.stats.get("core0/branches/mispredicted"),
              r.stats.get("core0/branches/cond") / 2);
}

TEST(OooCoreTest, StoreToLoadForwardingCounted)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    progStoreLoadForwarding(a);
    r.load(a);
    r.start();
    r.run();
    EXPECT_GT(r.stats.get("core0/lsq/forwards"), 100ULL);
}

TEST(OooCoreTest, DisambiguationUsesPhysicalAddresses)
{
    // Two virtual windows onto one physical frame: a store through one
    // mapping must be visible to an immediately following load through
    // the other. The LSQ disambiguates by physical address (like the
    // paper's LSQ), so the load either forwards from the store queue or
    // replays until the store commits; matching on virtual addresses
    // alone would let the load read the frame's stale contents.
    constexpr U64 ALIAS = 0x5000000;
    SimConfig cfg = oooConfig();
    cfg.load_hoisting = true;
    CoreRunner r(cfg);
    Pfn mfn = r.aspace.walk(r.cr3, GuestVirt(CoreRunner::DATA_BASE)).mfn;
    r.aspace.map(r.cr3, GuestVirt(ALIAS), mfn,
                 Pte::RW | Pte::US | Pte::NX);

    Assembler a(CoreRunner::CODE_BASE);
    a.mov(R::rcx, 100);
    a.mov(R::r8, 0);
    Label top = a.label();
    // Slow store address (dependency chain) through one mapping, fast
    // load address through the other: the load hoists past the store
    // and must be squashed when the store resolves onto the frame.
    a.mov(R::rax, R::rdi);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.mov(Mem::at(R::rax), R::rcx);   // store through DATA_BASE
    a.mov(R::rdx, Mem::at(R::rsi));   // aliasing load via ALIAS
    a.add(R::r8, R::rdx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.contexts[0]->regs[REG_rdi] = CoreRunner::DATA_BASE + 0x40;
    r.contexts[0]->regs[REG_rsi] = ALIAS + 0x40;
    r.start();
    r.run();
    EXPECT_EQ(r.reg(R::r8), 5050ULL);
}

TEST(OooCoreTest, ReturnAddressStackPredictsReturns)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    progCallsAndStack(a);
    r.load(a);
    r.start();
    r.run();
    U64 rets = r.stats.get("core0/branches/indirect");
    U64 miss = r.stats.get("core0/branches/indirect_mispredicted");
    EXPECT_GT(rets, 100ULL);
    // Top-pointer-repair RAS (as on real K8): wrong-path pops/pushes
    // after leaf-branch mispredicts corrupt some slots, so recursive
    // fib sees a nonzero but bounded return mispredict rate.
    EXPECT_LT((double)miss / (double)rets, 0.35);
}

TEST(OooCoreTest, LoadHoistingFlushesOnViolation)
{
    SimConfig cfg = oooConfig();
    cfg.load_hoisting = true;
    CoreRunner r(cfg);
    Assembler a(CoreRunner::CODE_BASE);
    // Store with a slow-to-resolve address followed by a load of the
    // same location: hoisted loads must be squashed and re-run.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.movStoreImm32(Mem::at(R::rbx), 1111);
    a.mov(R::rcx, 100);
    a.mov(R::r8, 0);
    Label top = a.label();
    // Slow address: chain of multiplies producing rbx again.
    a.mov(R::rax, R::rbx);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.imul(R::rax, R::rax, 1);
    a.mov(Mem::at(R::rax), R::rcx);    // store (address late)
    a.mov(R::rdx, Mem::at(R::rbx));    // aliasing load (address early)
    a.add(R::r8, R::rdx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run();
    // Functional result must be exact despite speculation: sum of
    // rcx values 100..1.
    EXPECT_EQ(r.reg(R::r8), 5050ULL);
    EXPECT_GT(r.stats.get("core0/lsq/hoist_flushes"), 0ULL);
}

TEST(OooCoreTest, NoHoistingWaitsInstead)
{
    CoreRunner r(oooConfig());  // K8 preset: hoisting off
    Assembler a(CoreRunner::CODE_BASE);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 50);
    a.mov(R::r8, 0);
    Label top = a.label();
    a.mov(Mem::at(R::rbx), R::rcx);
    a.mov(R::rdx, Mem::at(R::rbx));
    a.add(R::r8, R::rdx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    r.run();
    EXPECT_EQ(r.reg(R::r8), 1275ULL);  // 50+49+...+1
    EXPECT_EQ(r.stats.get("core0/lsq/hoist_flushes"), 0ULL);
}

TEST(OooCoreTest, DivideFaultIsPrecise)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    Label handler = a.newLabel();
    a.mov(R::rbx, 111);            // committed before the fault
    a.mov(R::rdx, 0);
    a.mov(R::rax, 5);
    a.mov(R::rcx, 0);
    a.div(R::rcx);                 // #DE
    a.mov(R::rbx, 999);            // must never commit
    a.hlt();
    a.bind(handler);
    a.pop(R::rsi);                 // fault word
    a.hlt();
    r.load(a);
    r.contexts[0]->event_callback = a.labelVa(handler);
    r.contexts[0]->kernel_sp = CoreRunner::STACK_TOP - 0x1000;
    r.start();
    r.run();
    EXPECT_EQ(r.reg(R::rbx), 111ULL);
    EXPECT_EQ(r.reg(R::rsi) >> 48, (U64)GuestFault::DivideError);
}

TEST(OooCoreTest, SelfModifyingCodeFlushesPipeline)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    Label again = a.newLabel(), done = a.newLabel();
    Label site = a.newLabel();
    a.mov(R::rbx, 0);
    a.bind(again);
    a.bind(site);
    a.mov(R::rax, 1);
    a.inc(R::rbx);
    a.cmp(R::rbx, 2);
    a.jcc(COND_e, done);
    a.movLabel(R::rdx, site);
    a.mov(R::rcx, 2);
    a.mov8(Mem::at(R::rdx, 1), R::rcx);
    a.jmp(again);
    a.bind(done);
    a.hlt();
    r.load(a);
    r.start();
    r.run();
    EXPECT_EQ(r.reg(R::rax), 2ULL);
    EXPECT_GT(r.stats.get("bbcache/smc_invalidations"), 0ULL);
}

TEST(OooCoreTest, EventDeliveryAtInstructionBoundary)
{
    CoreRunner r(oooConfig());
    Assembler a(CoreRunner::CODE_BASE);
    Label handler = a.newLabel(), spin = a.newLabel();
    a.mov(R::rax, 0);
    a.sti();
    a.bind(spin);
    a.inc(R::rax);
    a.cmp(R::rbx, 1);
    a.jcc(COND_ne, spin);
    a.hlt();
    a.bind(handler);
    a.add(R::rsp, 8);
    a.mov(R::rbx, 1);
    a.iretq();
    r.load(a);
    r.contexts[0]->event_callback = a.labelVa(handler);
    r.contexts[0]->kernel_sp = CoreRunner::STACK_TOP - 0x1000;
    r.contexts[0]->regs[REG_rbx] = 0;
    r.start();
    // Run a while, then raise the event.
    for (U64 c = 0; c < 2000; c++)
        r.core->cycle(SimCycle(c));
    r.contexts[0]->event_pending = true;
    for (U64 c = 2000; c < 100000 && !r.core->allIdle(); c++)
        r.core->cycle(SimCycle(c));
    EXPECT_TRUE(r.core->allIdle());
    EXPECT_EQ(r.reg(R::rbx), 1ULL);
    EXPECT_GT(r.stats.get("core0/commit/events_delivered"), 0ULL);
}

TEST(OooCoreTest, DcacheMissesStallLoads)
{
    SimConfig cfg = oooConfig();
    CoreRunner r(cfg);
    Assembler a(CoreRunner::CODE_BASE);
    // Pointer-chase through a large stride to defeat the L1.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 200);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.shl(R::rdx, 12);               // 4 KB stride: unique lines+pages
    a.add(R::rdx, R::rbx);
    a.add(R::rax, Mem::at(R::rdx));
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    U64 cycles = r.run();
    EXPECT_GT(r.stats.get("core0/dcache/misses"), 150ULL);
    EXPECT_GT(r.stats.get("core0/dtlb/misses"), 100ULL);
    EXPECT_GT(r.stats.get("core0/walker/walks"), 100ULL);
    // The independent misses overlap through the 8 MSHRs (memory-level
    // parallelism), so the bound is mem_latency * misses / mshr_count.
    EXPECT_GT(cycles, 200ULL * 112 / 8);
}

// ---------------------------------------------------------------------
// Skip-ahead scheduling
// ---------------------------------------------------------------------

// Serial pointer-chase: every load address depends on the previous
// load's value, so each D-cache/TLB miss fully drains the pipeline and
// leaves long stretches of quiesced cycles for skip-ahead to jump.
void
progSerialMissChain(Assembler &a)
{
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 64);
    a.mov(R::rax, 0);
    Label top = a.label();
    a.mov(R::rdx, R::rcx);
    a.shl(R::rdx, 13);               // 8 KB stride: unique lines+pages
    a.add(R::rdx, R::rbx);
    a.add(R::rdx, R::rax);           // serialize on the previous load
    a.mov(R::rsi, Mem::at(R::rdx));
    a.add(R::rax, R::rsi);           // memory is zero-filled: rax stays 0
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

TEST(OooCoreTest, SkipAheadCoversLongStalls)
{
    SimConfig cfg = oooConfig();     // commit checker stays on: every
    ASSERT_TRUE(cfg.skip_ahead);     // committed uop is lockstep-checked
    CoreRunner r(cfg);
    Assembler a(CoreRunner::CODE_BASE);
    progSerialMissChain(a);
    r.load(a);
    r.start();
    r.run();
    EXPECT_EQ(r.reg(R::rax), 0ULL);
    EXPECT_EQ(r.reg(R::rcx), 0ULL);
    EXPECT_GT(r.stats.get("core0/dcache/misses"), 50ULL);
    // The serial chain stalls the whole core for ~memory latency per
    // iteration; the fast path must absorb most of those cycles.
    EXPECT_GT(r.stats.get("core0/ooocore/skipped_cycles"), 1000ULL);
    EXPECT_GT(r.stats.get("core0/ooocore/select_fast_skips"), 0ULL);
    EXPECT_GT(r.stats.get("core0/ooocore/wakeup_broadcasts"), 0ULL);
    // Skipped cycles still count as simulated cycles.
    EXPECT_GT(r.stats.get("core0/cycles"),
              r.stats.get("core0/ooocore/skipped_cycles"));
}

TEST(OooCoreTest, SkipAheadIsDeterministic)
{
    // Identical guest program with skip-ahead on vs off must produce
    // bit-identical architectural results AND identical timing: same
    // final cycle count, same commit stream length. Only host work may
    // differ. (Per-stage stall counters are excluded by design: they
    // count evaluated cycles only, and skip-ahead evaluates fewer.)
    U64 cycles[2], rax[2], rsp[2], insns[2], uops[2], branches[2],
        skipped[2];
    for (int skip = 0; skip < 2; skip++) {
        SimConfig cfg = oooConfig();
        cfg.skip_ahead = (skip == 1);
        CoreRunner r(cfg);
        Assembler a(CoreRunner::CODE_BASE);
        progSerialMissChain(a);
        r.load(a);
        r.start();
        cycles[skip] = r.run();
        rax[skip] = r.reg(R::rax);
        rsp[skip] = r.reg(R::rsp);
        insns[skip] = r.stats.get("core0/commit/insns");
        uops[skip] = r.stats.get("core0/commit/uops");
        branches[skip] = r.stats.get("core0/branches/total");
        skipped[skip] = r.stats.get("core0/ooocore/skipped_cycles");
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(rax[0], rax[1]);
    EXPECT_EQ(rsp[0], rsp[1]);
    EXPECT_EQ(insns[0], insns[1]);
    EXPECT_EQ(uops[0], uops[1]);
    EXPECT_EQ(branches[0], branches[1]);
    EXPECT_EQ(skipped[0], 0ULL);
    EXPECT_GT(skipped[1], 0ULL);
}

}  // namespace
}  // namespace ptl
