/**
 * Tests for the rsync-over-ssh benchmark workload: the file-set
 * generator, end-to-end runs on both core models (the run
 * self-validates: exit code = count of files whose reconstruction
 * failed checksum verification), phase markers, and the two Table 1
 * trial harnesses.
 */

#include <gtest/gtest.h>

#include "workload/k8preset.h"

namespace ptl {
namespace {

FileSetParams
tinySet()
{
    FileSetParams p;
    p.file_count = 12;
    p.mean_file_bytes = 3000;
    p.max_file_bytes = 8192;
    p.seed = 7;
    return p;
}

TEST(FileSetTest, GeneratorIsDeterministicAndWellFormed)
{
    FileSet a = generateFileSet(tinySet());
    FileSet b = generateFileSet(tinySet());
    EXPECT_EQ(a.old_archive, b.old_archive);
    EXPECT_EQ(a.new_archive, b.new_archive);

    ArchiveView old_view = ArchiveView::parse(a.old_archive);
    ArchiveView new_view = ArchiveView::parse(a.new_archive);
    ASSERT_EQ(old_view.entries.size(), 12u);
    ASSERT_EQ(new_view.entries.size(), 12u);
    int identical = 0;
    for (size_t i = 0; i < old_view.entries.size(); i++) {
        // Same name order; lengths may differ after edits.
        EXPECT_EQ(old_view.entries[i].name_hash,
                  new_view.entries[i].name_hash);
        EXPECT_GT(old_view.entries[i].length, 0u);
        const auto &oe = old_view.entries[i];
        const auto &ne = new_view.entries[i];
        if (oe.length == ne.length
            && std::equal(a.old_archive.begin() + oe.offset,
                          a.old_archive.begin() + oe.offset + oe.length,
                          a.new_archive.begin() + ne.offset))
            identical++;
    }
    // Some files unchanged, some modified.
    EXPECT_GT(identical, 0);
    EXPECT_LT(identical, 12);
}

TEST(FileSetTest, ArchiveOffsetsInBounds)
{
    FileSet fs = generateFileSet(tinySet());
    for (const auto *arch : {&fs.old_archive, &fs.new_archive}) {
        ArchiveView v = ArchiveView::parse(*arch);
        for (const auto &e : v.entries) {
            EXPECT_LE(e.offset + e.length, arch->size());
        }
    }
}

SimConfig
workloadConfig(const char *core)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = core;
    cfg.core_freq_hz = 50'000'000;
    cfg.timer_hz = 1000;
    cfg.snapshot_interval = 200'000;
    cfg.commit_checker = true;
    return cfg;
}

TEST(RsyncBenchTest, EndToEndOnSequentialCore)
{
    RsyncBench bench(workloadConfig("seq"), tinySet());
    RsyncBench::Result r = bench.run(3'000'000'000ULL);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.mismatches, 0ULL)
        << "server-side checksum verification failed";
    // The phase markers arrived in order.
    const auto &marks = bench.machine().hypervisor().markers();
    ASSERT_GE(marks.size(), 7u);
    EXPECT_EQ(marks[0].id, (U64)PHASE_A_STARTUP);
    EXPECT_EQ(marks[1].id, (U64)PHASE_B_SSH_CONNECT);
    EXPECT_EQ(marks[2].id, (U64)PHASE_C_CLIENT_LIST);
    EXPECT_EQ(marks[3].id, (U64)PHASE_D_SERVER_LIST);
    EXPECT_EQ(marks[4].id, (U64)PHASE_E_DELTAS);
    EXPECT_EQ(marks[5].id, (U64)PHASE_F_TRANSMIT);
    EXPECT_EQ(marks[6].id, (U64)PHASE_G_SHUTDOWN);
    for (size_t i = 1; i < marks.size(); i++)
        EXPECT_GE(marks[i].cycle, marks[i - 1].cycle);
    // Kernel and idle time both show up (Figure 2's structure).
    StatsTree &s = bench.machine().stats();
    EXPECT_GT(s.get("external/cycles_in_mode/kernel"), 0ULL);
    EXPECT_GT(s.get("external/cycles_in_mode/idle"), 0ULL);
    EXPECT_GT(s.get("external/cycles_in_mode/user"), 0ULL);
    EXPECT_GT(s.get("net/packets"), 4ULL);
    EXPECT_GT(s.get("disk/reads"), 1ULL);
}

TEST(RsyncBenchTest, EndToEndOnOooCore)
{
    RsyncBench bench(workloadConfig("ooo"), tinySet());
    RsyncBench::Result r = bench.run(3'000'000'000ULL);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.mismatches, 0ULL);
    StatsTree &s = bench.machine().stats();
    EXPECT_GT(s.get("core0/commit/insns"), 100'000ULL);
    EXPECT_GT(s.get("core0/lsq/forwards"), 0ULL);
    EXPECT_GT(s.get("core0/branches/mispredicted"), 0ULL);
}

TEST(RsyncBenchTest, DeltaActuallyCompresses)
{
    // With many unchanged files, far fewer bytes must cross the
    // network than the raw file data (rsync's whole point).
    FileSetParams p = tinySet();
    p.unchanged_pct = 70;
    RsyncBench bench(workloadConfig("seq"), p);
    RsyncBench::Result r = bench.run(3'000'000'000ULL);
    ASSERT_TRUE(r.shutdown);
    ASSERT_EQ(r.mismatches, 0ULL);
    U64 net_bytes = bench.machine().stats().get("net/bytes");
    U64 data_bytes = bench.fileSet().total_new_bytes;
    // Checksums flow server->client and deltas client->server; total
    // network traffic must still be well below 1.5x the corpus (vs
    // ~2x+ for a naive full transfer with checksums).
    EXPECT_LT(net_bytes, data_bytes);
}

TEST(Table1Trials, NativeTrialProfilesK8Structures)
{
    auto native = makeNativeTrial(tinySet());
    RsyncBench::Result r = native->run();
    ASSERT_TRUE(r.shutdown);
    ASSERT_EQ(r.mismatches, 0ULL);
    Table1Metrics m = native->metrics();
    EXPECT_GT(m.insns, 100'000ULL);
    EXPECT_GT(m.uops, m.insns);          // some multi-op instructions
    EXPECT_GT(m.l1d_accesses, m.insns / 5);
    EXPECT_GT(m.branches, 1'000ULL);
    EXPECT_GT(m.cycles, m.insns / 3);    // modeled cycles are sane
}

TEST(Table1Trials, SimAndNativeTrialsAgreeArchitecturally)
{
    // The same guest work executes in both trials: instruction counts
    // must match within the paper's ~2% (ours: near-exactly, modulo
    // scheduling-dependent idle-loop iterations).
    FileSetParams p = tinySet();
    auto native = makeNativeTrial(p);
    ASSERT_EQ(native->run().mismatches, 0ULL);
    auto sim = makeSimTrial(p);
    ASSERT_EQ(sim->run().mismatches, 0ULL);
    Table1Metrics nm = native->metrics();
    Table1Metrics sm = sim->metrics();
    double insn_ratio = (double)sm.insns / (double)nm.insns;
    EXPECT_GT(insn_ratio, 0.9);
    EXPECT_LT(insn_ratio, 1.1);
    // Structural differences of Table 1:
    // PTLsim counts discrete uops; K8 counts fused macro-ops.
    EXPECT_GT((double)sm.uops / (double)nm.uops, 1.05);
    // The full DTLB story (PTLsim's single-level TLB missing far more
    // than K8's 2-level TLB) needs the full-scale footprint; at this
    // tiny scale context-switch flushes dominate both trials, so only
    // sanity-check here (table1_k8_accuracy checks the real shape).
    EXPECT_GT(sm.dtlb_misses * 2, nm.dtlb_misses);
}

}  // namespace
}  // namespace ptl
