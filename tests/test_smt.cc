/**
 * SMT and multi-core tests: per-thread pipeline structures sharing
 * issue queues / caches, fetch policies, cross-thread interlocked
 * instruction semantics (Section 4.4), deadlock rescue, and multi-core
 * coherence with both instant-visibility and MOESI protocols.
 */

#include <gtest/gtest.h>

#include "guest_harness.h"

namespace ptl {
namespace {

SimConfig
smtConfig(int threads, SmtPolicy policy = SmtPolicy::RoundRobin)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "smt";
    cfg.smt_threads = threads;
    cfg.smt_policy = policy;
    cfg.commit_checker = true;
    return cfg;
}

/** Each thread atomically adds its id+1 to a shared counter N times. */
void
lockContentionProgram(Assembler &a, int iterations)
{
    // arg convention: each VCPU starts at entry with rdi = thread id
    // (CoreRunner sets rdi per context below).
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, (U64)iterations);
    a.mov(R::rdx, R::rdi);
    a.inc(R::rdx);               // addend = id + 1
    Label top = a.label();
    a.mov(R::rax, R::rdx);
    a.lockXadd(Mem::at(R::rbx), R::rax);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

TEST(Smt, InterlockedAtomicityAcrossThreads)
{
    constexpr int ITERS = 500;
    CoreRunner r(smtConfig(2), 2);
    Assembler a(CoreRunner::CODE_BASE);
    lockContentionProgram(a, ITERS);
    r.load(a, 0);
    r.load(a, 1);
    r.contexts[0]->regs[REG_rdi] = 0;
    r.contexts[1]->regs[REG_rdi] = 1;
    r.start();
    r.run(30'000'000);
    // Thread 0 adds 1, thread 1 adds 2, ITERS times each.
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE, 8), (U64)(ITERS * 3));
    EXPECT_GT(r.stats.get("interlock/acquires"), 2ULL * ITERS - 10);
}

TEST(Smt, BothThreadsMakeProgress)
{
    CoreRunner r(smtConfig(2), 2);
    Assembler a(CoreRunner::CODE_BASE);
    // Independent CPU-bound loops writing progress counters.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, 2000);
    Label top = a.label();
    a.mov(Mem::idx(R::rbx, R::rdi, 8, 0x100), R::rcx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.mov(Mem::idx(R::rbx, R::rdi, 8, 0x200), R::rdi);
    a.hlt();
    r.load(a, 0);
    r.load(a, 1);
    r.contexts[0]->regs[REG_rdi] = 0;
    r.contexts[1]->regs[REG_rdi] = 1;
    r.start();
    U64 cycles = r.run(10'000'000);
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE + 0x200, 8), 0ULL);
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE + 0x208, 8), 1ULL);
    // Sharing one 3-wide core: combined throughput beats 2x serial but
    // each thread is slower than alone; just sanity-bound the cycles.
    EXPECT_LT(cycles, 10'000'000ULL);
    EXPECT_EQ(r.stats.get("core0/commit/insns"),
              2 * (2ULL + 2000 * 3 + 1 + 1));
}

TEST(Smt, IcountPolicyAlsoCorrect)
{
    constexpr int ITERS = 300;
    CoreRunner r(smtConfig(2, SmtPolicy::Icount), 2);
    Assembler a(CoreRunner::CODE_BASE);
    lockContentionProgram(a, ITERS);
    r.load(a, 0);
    r.load(a, 1);
    r.contexts[0]->regs[REG_rdi] = 0;
    r.contexts[1]->regs[REG_rdi] = 1;
    r.start();
    r.run(30'000'000);
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE, 8), (U64)(ITERS * 3));
}

TEST(Smt, FourThreads)
{
    constexpr int ITERS = 200;
    CoreRunner r(smtConfig(4), 4);
    Assembler a(CoreRunner::CODE_BASE);
    lockContentionProgram(a, ITERS);
    for (int i = 0; i < 4; i++) {
        r.load(a, i);
        r.contexts[i]->regs[REG_rdi] = (U64)i;
    }
    r.start();
    r.run(60'000'000);
    // Sum of (id+1) over 4 threads = 10 per round.
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE, 8), (U64)(ITERS * 10));
}

TEST(Smt, SpinlockCriticalSection)
{
    // Classic test-and-set spinlock protecting a non-atomic RMW.
    constexpr int ITERS = 300;
    CoreRunner r(smtConfig(2), 2);
    Assembler a(CoreRunner::CODE_BASE);
    Label acquire = a.newLabel(), spin = a.newLabel(), go = a.newLabel();
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);        // lock word
    a.movImm64(R::rbp, CoreRunner::DATA_BASE + 64);   // protected counter
    a.mov(R::rcx, (U64)ITERS);
    a.bind(acquire);
    // try: cmpxchg(lock: 0 -> 1)
    a.mov(R::rax, 0);
    a.mov(R::rdx, 1);
    a.lockCmpxchg(Mem::at(R::rbx), R::rdx);
    a.jcc(COND_e, go);
    a.bind(spin);
    a.cmp8(Mem::at(R::rbx), 0);
    a.jcc(COND_ne, spin);
    a.jmp(acquire);
    a.bind(go);
    // critical section: plain (non-atomic) increment
    a.mov(R::rax, Mem::at(R::rbp));
    a.inc(R::rax);
    a.mov(Mem::at(R::rbp), R::rax);
    // release
    a.mov(R::rdx, 0);
    a.mov(Mem::at(R::rbx), R::rdx);
    a.dec(R::rcx);
    a.jcc(COND_ne, acquire);
    a.hlt();
    r.load(a, 0);
    r.load(a, 1);
    r.start();
    r.run(60'000'000);
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE + 64, 8),
              (U64)(2 * ITERS));
    EXPECT_EQ(r.readGuest(CoreRunner::DATA_BASE, 8), 0ULL);  // unlocked
}

// ---------------------------------------------------------------------
// Multi-core (one thread per core, shared coherence + interlocks)
// ---------------------------------------------------------------------

class MultiCoreRig
{
  public:
    MultiCoreRig(int ncores, CoherenceKind kind)
        : cfg(SimConfig::preset("k8")), mem(32 << 20, 7, true),
          aspace(mem),
          bbcache(stats.counter("bbcache/hits"),
                  stats.counter("bbcache/misses"),
                  stats.counter("bbcache/smc_invalidations")),
          sys(bbcache),
          interlocks(stats),
          coherence(kind, cfg.interconnect_latency, stats)
    {
        cfg.core = "ooo";
        cfg.commit_checker = true;
        cfg.coherence = kind;
        cr3 = aspace.createRoot();
        aspace.mapRange(cr3, GuestVirt(CoreRunner::CODE_BASE),
                        256 * PAGE_SIZE, Pte::RW | Pte::US);
        aspace.mapRange(cr3, GuestVirt(CoreRunner::DATA_BASE),
                        256 * PAGE_SIZE, Pte::RW | Pte::US | Pte::NX);
        aspace.mapRange(cr3,
                        GuestVirt(CoreRunner::STACK_TOP - 256 * PAGE_SIZE),
                        256 * PAGE_SIZE, Pte::RW | Pte::US | Pte::NX);
        for (int i = 0; i < ncores; i++) {
            contexts.push_back(std::make_unique<Context>());
            Context &ctx = *contexts.back();
            ctx.vcpu_id = i;
            ctx.cr3 = cr3;
            ctx.kernel_mode = true;
            ctx.regs[REG_rsp] =
                CoreRunner::STACK_TOP - 64 - (U64)i * 0x10000;
        }
    }

    void
    loadAndStart(Assembler &assembler)
    {
        std::vector<U8> image = assembler.finalize();
        for (size_t i = 0; i < image.size(); i++) {
            GuestAccess a = guestTranslate(aspace, *contexts[0],
                                           GuestVirt(assembler.baseVa() + i),
                                           MemAccess::Write);
            ptl_assert(a.ok());
            mem.writeBytes(a.paddr, &image[i], 1);
        }
        for (size_t i = 0; i < contexts.size(); i++) {
            contexts[i]->rip = GuestVirt(assembler.baseVa());
            CoreBuildParams p;
            p.config = &cfg;
            p.contexts = {contexts[i].get()};
            p.aspace = &aspace;
            p.bbcache = &bbcache;
            p.sys = &sys;
            p.stats = &stats;
            p.prefix = "core" + std::to_string(i) + "/";
            p.coherence = &coherence;
            p.interlocks = &interlocks;
            p.core_id = i;
            hierarchies.push_back(std::make_unique<MemoryHierarchy>(
                cfg, aspace, stats, p.prefix, &coherence));
            p.hierarchy = hierarchies.back().get();
            cores.push_back(createCoreModel("ooo", p));
            cores.back()->attachAuditor(
                makeVerifyAuditor(cfg, stats, p.prefix));
        }
    }

    U64
    run(U64 max_cycles)
    {
        U64 c = 0;
        for (; c < max_cycles; c++) {
            bool all_idle = true;
            for (auto &core : cores) {
                core->cycle(SimCycle(c));
                all_idle &= core->allIdle();
            }
            if (all_idle)
                break;
        }
        for (auto &core : cores)
            ptl_assert(core->allIdle());
        return c;
    }

    U64
    readGuest(U64 va, unsigned bytes)
    {
        U64 v = 0;
        guestRead(aspace, *contexts[0], GuestVirt(va), bytes, v);
        return v;
    }

    SimConfig cfg;
    PhysMem mem;
    AddressSpace aspace;
    StatsTree stats;
    BasicBlockCache bbcache;
    StubSystem sys;
    InterlockController interlocks;
    CoherenceController coherence;
    std::vector<std::unique_ptr<Context>> contexts;
    std::vector<std::unique_ptr<MemoryHierarchy>> hierarchies;
    std::vector<std::unique_ptr<CoreModel>> cores;
    Pfn cr3;
};

class MultiCoreCoherence
    : public ::testing::TestWithParam<CoherenceKind>
{
};

TEST_P(MultiCoreCoherence, AtomicCountersAcrossCores)
{
    constexpr int ITERS = 400;
    MultiCoreRig rig(2, GetParam());
    Assembler a(CoreRunner::CODE_BASE);
    // Use vcpu_id-free variant: both add 1.
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rcx, (U64)ITERS);
    Label top = a.label();
    a.lockInc(Mem::at(R::rbx));
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    rig.loadAndStart(a);
    rig.run(50'000'000);
    EXPECT_EQ(rig.readGuest(CoreRunner::DATA_BASE, 8), (U64)(2 * ITERS));
    rig.coherence.checkAllInvariants();
    EXPECT_GT(rig.stats.get("coherence/invalidations"), 0ULL);
}

TEST_P(MultiCoreCoherence, ProducerConsumerFlag)
{
    MultiCoreRig rig(2, GetParam());
    Assembler a(CoreRunner::CODE_BASE);
    // Core 0 writes data then sets a flag; core 1 spins on the flag
    // then reads the data. Store commit order makes this safe.
    Label core1 = a.newLabel(), start = a.newLabel();
    a.jmp(start);
    a.bind(core1);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    Label spin = a.label();
    a.cmp8(Mem::at(R::rbx, 64), 1);
    a.jcc(COND_ne, spin);
    a.mov(R::r8, Mem::at(R::rbx));     // must observe 0xD47A
    a.hlt();
    a.bind(start);
    // Core 0 path: if vcpu_id (rdi) != 0, jump to the consumer.
    a.test(R::rdi, R::rdi);
    a.jcc(COND_ne, core1);
    a.movImm64(R::rbx, CoreRunner::DATA_BASE);
    a.mov(R::rax, 0xD47A);
    a.mov(Mem::at(R::rbx), R::rax);    // data
    a.mov(R::rax, 1);
    a.mov8(Mem::at(R::rbx, 64), R::rax);  // flag (different line)
    a.hlt();
    rig.contexts[0]->regs[REG_rdi] = 0;
    rig.contexts[1]->regs[REG_rdi] = 1;
    rig.loadAndStart(a);
    rig.run(50'000'000);
    EXPECT_EQ(rig.contexts[1]->regs[REG_r8], 0xD47AULL);
    rig.coherence.checkAllInvariants();
}

INSTANTIATE_TEST_SUITE_P(Protocols, MultiCoreCoherence,
                         ::testing::Values(CoherenceKind::InstantVisibility,
                                           CoherenceKind::Moesi));

TEST(MultiCore, MoesiCostsMoreThanInstant)
{
    // Ping-pong a line between two cores: MOESI pays interconnect
    // latency per transfer, the instant model does not (paper default).
    auto run_with = [](CoherenceKind kind) {
        MultiCoreRig rig(2, kind);
        Assembler a(CoreRunner::CODE_BASE);
        a.movImm64(R::rbx, CoreRunner::DATA_BASE);
        a.mov(R::rcx, 300);
        Label top = a.label();
        a.lockInc(Mem::at(R::rbx));
        a.dec(R::rcx);
        a.jcc(COND_ne, top);
        a.hlt();
        rig.loadAndStart(a);
        return rig.run(50'000'000);
    };
    U64 instant = run_with(CoherenceKind::InstantVisibility);
    U64 moesi = run_with(CoherenceKind::Moesi);
    EXPECT_GT(moesi, instant + 1000);
}

}  // namespace
}  // namespace ptl
