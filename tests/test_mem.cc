/** Tests for PhysMem, page tables, TLBs and the cache tag arrays. */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache.h"
#include "mem/pagetable.h"
#include "mem/physmem.h"
#include "mem/tlb.h"

namespace ptl {
namespace {

TEST(PhysMem, ReadWriteRoundTrip)
{
    PhysMem mem(1 << 20, 1, false);
    mem.write(GuestPhys(0x1234), 0xdeadbeefcafebabeULL, 8);
    EXPECT_EQ(mem.read(GuestPhys(0x1234), 8), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(mem.read(GuestPhys(0x1234), 4), 0xcafebabeULL);
    EXPECT_EQ(mem.read(GuestPhys(0x1234), 1), 0xbeULL);
    mem.write(GuestPhys(0x1238), 0x11, 1);
    EXPECT_EQ(mem.read(GuestPhys(0x1234), 8), 0xdeadbe11cafebabeULL);
}

TEST(PhysMem, CrossFrameAccess)
{
    PhysMem mem(1 << 20, 1, false);
    GuestPhys addr = GuestPhys(PAGE_SIZE - 3);  // spans frames 0 and 1
    mem.write(addr, 0x0102030405060708ULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x0102030405060708ULL);
    EXPECT_EQ(mem.read(GuestPhys(PAGE_SIZE), 1), 0x05ULL);
}

TEST(PhysMem, ShuffledAllocatorIsNonContiguousAndComplete)
{
    PhysMem mem(1 << 20, 99, true);
    std::set<U64> seen;
    bool contiguous = true;
    U64 prev = ~0ULL;
    for (U64 i = 0; i < mem.frameCount(); i++) {
        U64 mfn = mem.allocFrame().raw();
        EXPECT_LT(mfn, mem.frameCount());
        EXPECT_TRUE(seen.insert(mfn).second) << "duplicate mfn";
        if (prev != ~0ULL && mfn != prev + 1)
            contiguous = false;
        prev = mfn;
    }
    EXPECT_FALSE(contiguous) << "shuffle produced the identity order";
    EXPECT_EQ(seen.size(), mem.frameCount());
}

TEST(PhysMem, DeterministicShuffle)
{
    PhysMem a(1 << 18, 7, true), b(1 << 18, 7, true);
    for (int i = 0; i < 32; i++)
        EXPECT_EQ(a.allocFrame(), b.allocFrame());
}

class PageTableTest : public ::testing::Test
{
  protected:
    PageTableTest() : mem(8 << 20, 3, true), aspace(mem) {}
    PhysMem mem;
    AddressSpace aspace;
};

TEST_F(PageTableTest, MapAndWalk)
{
    Pfn cr3 = aspace.createRoot();
    Pfn mfn = mem.allocFrame();
    aspace.map(cr3, GuestVirt(0x400000), mfn, Pte::RW | Pte::US);
    PageWalk w = aspace.walk(cr3, GuestVirt(0x400123));
    EXPECT_TRUE(w.present);
    EXPECT_TRUE(w.writable);
    EXPECT_TRUE(w.user);
    EXPECT_EQ(w.mfn, mfn);
    EXPECT_EQ(w.levels, 4);
    EXPECT_EQ(w.paddr(GuestVirt(0x400123)).raw(),
              (mfn.raw() << PAGE_SHIFT) | 0x123);
}

TEST_F(PageTableTest, NotPresentStopsEarly)
{
    Pfn cr3 = aspace.createRoot();
    PageWalk w = aspace.walk(cr3, GuestVirt(0x400000));
    EXPECT_FALSE(w.present);
    EXPECT_EQ(w.levels, 1);  // PML4 entry itself absent
    aspace.map(cr3, GuestVirt(0x400000), mem.allocFrame(), Pte::RW | Pte::US);
    // A nearby page in the same 2MB region: leaf absent, 4 levels read.
    PageWalk w2 = aspace.walk(cr3, GuestVirt(0x401000));
    EXPECT_FALSE(w2.present);
    EXPECT_EQ(w2.levels, 4);
}

TEST_F(PageTableTest, PermissionChecks)
{
    Pfn cr3 = aspace.createRoot();
    aspace.map(cr3, GuestVirt(0x10000), mem.allocFrame(), 0);           // kernel RO
    aspace.map(cr3, GuestVirt(0x20000), mem.allocFrame(), Pte::RW);     // kernel RW
    aspace.map(cr3, GuestVirt(0x30000), mem.allocFrame(),
               Pte::RW | Pte::US | Pte::NX);                 // user data

    PageWalk ro = aspace.walk(cr3, GuestVirt(0x10000));
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Read, false), GuestFault::None);
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Write, false),
              GuestFault::PageFaultWrite);
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Read, true),
              GuestFault::PageFaultRead);

    PageWalk ud = aspace.walk(cr3, GuestVirt(0x30000));
    EXPECT_EQ(checkWalkAccess(ud, MemAccess::Write, true), GuestFault::None);
    EXPECT_EQ(checkWalkAccess(ud, MemAccess::Execute, true),
              GuestFault::PageFaultFetch);
}

TEST_F(PageTableTest, AccessedDirtyBits)
{
    Pfn cr3 = aspace.createRoot();
    aspace.map(cr3, GuestVirt(0x40000), mem.allocFrame(), Pte::RW | Pte::US);
    PageWalk w = aspace.walk(cr3, GuestVirt(0x40000));
    // Fresh mapping: A/D clear; first touch sets A everywhere.
    EXPECT_TRUE(aspace.setAccessedDirty(w, false));
    U64 leaf = mem.read(w.pte_addr[3], 8);
    EXPECT_TRUE(leaf & Pte::A);
    EXPECT_FALSE(leaf & Pte::D);
    // Second read touch: nothing changes.
    EXPECT_FALSE(aspace.setAccessedDirty(w, false));
    // First write: D set.
    EXPECT_TRUE(aspace.setAccessedDirty(w, true));
    leaf = mem.read(w.pte_addr[3], 8);
    EXPECT_TRUE(leaf & Pte::D);
    EXPECT_FALSE(aspace.setAccessedDirty(w, true));
}

TEST_F(PageTableTest, CloneRootSharesLowerLevels)
{
    Pfn cr3a = aspace.createRoot();
    aspace.map(cr3a, GuestVirt(0x400000), mem.allocFrame(), Pte::RW | Pte::US);
    Pfn cr3b = aspace.cloneRoot(cr3a);
    EXPECT_NE(cr3a, cr3b);
    PageWalk wa = aspace.walk(cr3a, GuestVirt(0x400000));
    PageWalk wb = aspace.walk(cr3b, GuestVirt(0x400000));
    EXPECT_TRUE(wb.present);
    EXPECT_EQ(wa.mfn, wb.mfn);
    // Lower-level PTEs are physically shared; only the roots differ.
    EXPECT_EQ(wa.pte_addr[1], wb.pte_addr[1]);
    EXPECT_NE(wa.pte_addr[0], wb.pte_addr[0]);
    // A mapping added through one root is visible through the clone
    // when it lands in a shared lower-level table.
    aspace.map(cr3a, GuestVirt(0x401000), mem.allocFrame(), Pte::RW | Pte::US);
    EXPECT_TRUE(aspace.walk(cr3b, GuestVirt(0x401000)).present);
}

TEST_F(PageTableTest, MapRangeAndUnmap)
{
    Pfn cr3 = aspace.createRoot();
    aspace.mapRange(cr3, GuestVirt(0x100000), 5 * PAGE_SIZE, Pte::RW | Pte::US);
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(aspace.walk(cr3, GuestVirt(0x100000 + i * PAGE_SIZE)).present);
    aspace.unmap(cr3, GuestVirt(0x102000));
    EXPECT_FALSE(aspace.walk(cr3, GuestVirt(0x102000)).present);
    EXPECT_TRUE(aspace.walk(cr3, GuestVirt(0x103000)).present);
}

TEST(TlbTest, HitMissAndLru)
{
    Tlb tlb(4, 4);  // fully associative, 4 entries
    TlbEntry e;
    e.writable = true;
    for (U64 vpn = 0; vpn < 4; vpn++) {
        e.vpn = Vpn(vpn);
        e.mfn = Pfn(100 + vpn);
        tlb.insert(e);
    }
    ASSERT_NE(tlb.lookup(Vpn(0)), nullptr);
    EXPECT_EQ(tlb.lookup(Vpn(2))->mfn, Pfn(102));
    // Touch 0..2 so 3 becomes LRU; inserting evicts vpn 3.
    tlb.lookup(Vpn(0));
    tlb.lookup(Vpn(1));
    tlb.lookup(Vpn(2));
    e.vpn = Vpn(9);
    e.mfn = Pfn(109);
    tlb.insert(e);
    EXPECT_EQ(tlb.lookup(Vpn(3)), nullptr);
    EXPECT_NE(tlb.lookup(Vpn(9)), nullptr);
}

TEST(TlbTest, FlushSemantics)
{
    Tlb tlb(8, 2);
    TlbEntry e;
    e.vpn = Vpn(5);
    tlb.insert(e);
    tlb.flushVpn(Vpn(5));
    EXPECT_EQ(tlb.lookup(Vpn(5)), nullptr);
    e.vpn = Vpn(6);
    tlb.insert(e);
    tlb.flushAll();
    EXPECT_EQ(tlb.lookup(Vpn(6)), nullptr);
}

TEST(PdeCacheTest, LookupInsertEvict)
{
    PdeCache pde(2);
    EXPECT_EQ(pde.lookup(GuestVirt(0x200000)), GuestPhys(0));
    pde.insert(GuestVirt(0x200000), GuestPhys(0xAAAA000));
    pde.insert(GuestVirt(0x400000), GuestPhys(0xBBBB000));
    EXPECT_EQ(pde.lookup(GuestVirt(0x200123)), GuestPhys(0xAAAA000));  // same 2MB region
    EXPECT_EQ(pde.lookup(GuestVirt(0x400000)), GuestPhys(0xBBBB000));
    pde.insert(GuestVirt(0x600000), GuestPhys(0xCCCC000));                // evicts LRU (0x200000)
    EXPECT_EQ(pde.lookup(GuestVirt(0x200000)), GuestPhys(0));
    EXPECT_EQ(pde.lookup(GuestVirt(0x600000)), GuestPhys(0xCCCC000));
}

TEST(CacheArrayTest, HitMissEvictLru)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};  // 32 sets x 2 ways
    CacheArray c(p);
    EXPECT_EQ(c.lookup(GuestPhys(0x1000)), nullptr);
    c.insert(GuestPhys(0x1000), LineState::Exclusive);
    EXPECT_NE(c.lookup(GuestPhys(0x1000)), nullptr);
    EXPECT_NE(c.lookup(GuestPhys(0x103f)), nullptr);   // same line
    EXPECT_EQ(c.lookup(GuestPhys(0x1040)), nullptr);   // next line
    // Two more lines mapping to set of 0x1000 (stride = sets*64 = 2048).
    c.insert(GuestPhys(0x1000 + 2048), LineState::Exclusive);
    c.lookup(GuestPhys(0x1000));  // make the +2048 line LRU
    CacheArray::Eviction ev;
    c.insert(GuestPhys(0x1000 + 4096), LineState::Exclusive, &ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, GuestPhys(0x1000 + 2048));
    EXPECT_EQ(c.lookup(GuestPhys(0x1000 + 2048)), nullptr);
    EXPECT_NE(c.lookup(GuestPhys(0x1000)), nullptr);
}

TEST(CacheArrayTest, BankMapping64BitInterleave)
{
    CacheParams p{64 << 10, 2, 64, 3, 8, 8};
    CacheArray c(p);
    EXPECT_EQ(c.bankOf(GuestPhys(0x0)), 0);
    EXPECT_EQ(c.bankOf(GuestPhys(0x8)), 1);
    EXPECT_EQ(c.bankOf(GuestPhys(0x38)), 7);
    EXPECT_EQ(c.bankOf(GuestPhys(0x40)), 0);
    EXPECT_EQ(c.bankOf(GuestPhys(0x47)), 0);  // same 8-byte bank word
}

TEST(CacheArrayTest, InvalidateAndStates)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};
    CacheArray c(p);
    c.insert(GuestPhys(0x2000), LineState::Modified);
    EXPECT_TRUE(lineDirty(c.lookup(GuestPhys(0x2000))->state));
    c.invalidate(GuestPhys(0x2000));
    EXPECT_EQ(c.lookup(GuestPhys(0x2000)), nullptr);
    c.insert(GuestPhys(0x3000), LineState::Shared);
    c.invalidateAll();
    EXPECT_EQ(c.lookup(GuestPhys(0x3000)), nullptr);
}

TEST(CacheArrayTest, ForEachLineReconstructsAddresses)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};
    CacheArray c(p);
    c.insert(GuestPhys(0x12340), LineState::Exclusive);
    c.insert(GuestPhys(0x56780), LineState::Modified);
    std::set<U64> addrs;
    c.forEachLine([&](GuestPhys line_addr, const CacheArray::Line &) {
        addrs.insert(line_addr.raw());
    });
    EXPECT_TRUE(addrs.count(0x12340 & ~63ULL));
    EXPECT_TRUE(addrs.count(0x56780 & ~63ULL));
    EXPECT_EQ(addrs.size(), 2u);
}

}  // namespace
}  // namespace ptl
