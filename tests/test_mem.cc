/** Tests for PhysMem, page tables, TLBs and the cache tag arrays. */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache.h"
#include "mem/pagetable.h"
#include "mem/physmem.h"
#include "mem/tlb.h"

namespace ptl {
namespace {

TEST(PhysMem, ReadWriteRoundTrip)
{
    PhysMem mem(1 << 20, 1, false);
    mem.write(0x1234, 0xdeadbeefcafebabeULL, 8);
    EXPECT_EQ(mem.read(0x1234, 8), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(mem.read(0x1234, 4), 0xcafebabeULL);
    EXPECT_EQ(mem.read(0x1234, 1), 0xbeULL);
    mem.write(0x1238, 0x11, 1);
    EXPECT_EQ(mem.read(0x1234, 8), 0xdeadbe11cafebabeULL);
}

TEST(PhysMem, CrossFrameAccess)
{
    PhysMem mem(1 << 20, 1, false);
    U64 addr = PAGE_SIZE - 3;  // spans frames 0 and 1
    mem.write(addr, 0x0102030405060708ULL, 8);
    EXPECT_EQ(mem.read(addr, 8), 0x0102030405060708ULL);
    EXPECT_EQ(mem.read(PAGE_SIZE, 1), 0x05ULL);
}

TEST(PhysMem, ShuffledAllocatorIsNonContiguousAndComplete)
{
    PhysMem mem(1 << 20, 99, true);
    std::set<U64> seen;
    bool contiguous = true;
    U64 prev = ~0ULL;
    for (U64 i = 0; i < mem.frameCount(); i++) {
        U64 mfn = mem.allocFrame();
        EXPECT_LT(mfn, mem.frameCount());
        EXPECT_TRUE(seen.insert(mfn).second) << "duplicate mfn";
        if (prev != ~0ULL && mfn != prev + 1)
            contiguous = false;
        prev = mfn;
    }
    EXPECT_FALSE(contiguous) << "shuffle produced the identity order";
    EXPECT_EQ(seen.size(), mem.frameCount());
}

TEST(PhysMem, DeterministicShuffle)
{
    PhysMem a(1 << 18, 7, true), b(1 << 18, 7, true);
    for (int i = 0; i < 32; i++)
        EXPECT_EQ(a.allocFrame(), b.allocFrame());
}

class PageTableTest : public ::testing::Test
{
  protected:
    PageTableTest() : mem(8 << 20, 3, true), aspace(mem) {}
    PhysMem mem;
    AddressSpace aspace;
};

TEST_F(PageTableTest, MapAndWalk)
{
    U64 cr3 = aspace.createRoot();
    U64 mfn = mem.allocFrame();
    aspace.map(cr3, 0x400000, mfn, Pte::RW | Pte::US);
    PageWalk w = aspace.walk(cr3, 0x400123);
    EXPECT_TRUE(w.present);
    EXPECT_TRUE(w.writable);
    EXPECT_TRUE(w.user);
    EXPECT_EQ(w.mfn, mfn);
    EXPECT_EQ(w.levels, 4);
    EXPECT_EQ(w.paddr(0x400123), (mfn << PAGE_SHIFT) | 0x123);
}

TEST_F(PageTableTest, NotPresentStopsEarly)
{
    U64 cr3 = aspace.createRoot();
    PageWalk w = aspace.walk(cr3, 0x400000);
    EXPECT_FALSE(w.present);
    EXPECT_EQ(w.levels, 1);  // PML4 entry itself absent
    aspace.map(cr3, 0x400000, mem.allocFrame(), Pte::RW | Pte::US);
    // A nearby page in the same 2MB region: leaf absent, 4 levels read.
    PageWalk w2 = aspace.walk(cr3, 0x401000);
    EXPECT_FALSE(w2.present);
    EXPECT_EQ(w2.levels, 4);
}

TEST_F(PageTableTest, PermissionChecks)
{
    U64 cr3 = aspace.createRoot();
    aspace.map(cr3, 0x10000, mem.allocFrame(), 0);           // kernel RO
    aspace.map(cr3, 0x20000, mem.allocFrame(), Pte::RW);     // kernel RW
    aspace.map(cr3, 0x30000, mem.allocFrame(),
               Pte::RW | Pte::US | Pte::NX);                 // user data

    PageWalk ro = aspace.walk(cr3, 0x10000);
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Read, false), GuestFault::None);
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Write, false),
              GuestFault::PageFaultWrite);
    EXPECT_EQ(checkWalkAccess(ro, MemAccess::Read, true),
              GuestFault::PageFaultRead);

    PageWalk ud = aspace.walk(cr3, 0x30000);
    EXPECT_EQ(checkWalkAccess(ud, MemAccess::Write, true), GuestFault::None);
    EXPECT_EQ(checkWalkAccess(ud, MemAccess::Execute, true),
              GuestFault::PageFaultFetch);
}

TEST_F(PageTableTest, AccessedDirtyBits)
{
    U64 cr3 = aspace.createRoot();
    aspace.map(cr3, 0x40000, mem.allocFrame(), Pte::RW | Pte::US);
    PageWalk w = aspace.walk(cr3, 0x40000);
    // Fresh mapping: A/D clear; first touch sets A everywhere.
    EXPECT_TRUE(aspace.setAccessedDirty(w, false));
    U64 leaf = mem.read(w.pte_addr[3], 8);
    EXPECT_TRUE(leaf & Pte::A);
    EXPECT_FALSE(leaf & Pte::D);
    // Second read touch: nothing changes.
    EXPECT_FALSE(aspace.setAccessedDirty(w, false));
    // First write: D set.
    EXPECT_TRUE(aspace.setAccessedDirty(w, true));
    leaf = mem.read(w.pte_addr[3], 8);
    EXPECT_TRUE(leaf & Pte::D);
    EXPECT_FALSE(aspace.setAccessedDirty(w, true));
}

TEST_F(PageTableTest, CloneRootSharesLowerLevels)
{
    U64 cr3a = aspace.createRoot();
    aspace.map(cr3a, 0x400000, mem.allocFrame(), Pte::RW | Pte::US);
    U64 cr3b = aspace.cloneRoot(cr3a);
    EXPECT_NE(cr3a, cr3b);
    PageWalk wa = aspace.walk(cr3a, 0x400000);
    PageWalk wb = aspace.walk(cr3b, 0x400000);
    EXPECT_TRUE(wb.present);
    EXPECT_EQ(wa.mfn, wb.mfn);
    // Lower-level PTEs are physically shared; only the roots differ.
    EXPECT_EQ(wa.pte_addr[1], wb.pte_addr[1]);
    EXPECT_NE(wa.pte_addr[0], wb.pte_addr[0]);
    // A mapping added through one root is visible through the clone
    // when it lands in a shared lower-level table.
    aspace.map(cr3a, 0x401000, mem.allocFrame(), Pte::RW | Pte::US);
    EXPECT_TRUE(aspace.walk(cr3b, 0x401000).present);
}

TEST_F(PageTableTest, MapRangeAndUnmap)
{
    U64 cr3 = aspace.createRoot();
    aspace.mapRange(cr3, 0x100000, 5 * PAGE_SIZE, Pte::RW | Pte::US);
    for (int i = 0; i < 5; i++)
        EXPECT_TRUE(aspace.walk(cr3, 0x100000 + i * PAGE_SIZE).present);
    aspace.unmap(cr3, 0x102000);
    EXPECT_FALSE(aspace.walk(cr3, 0x102000).present);
    EXPECT_TRUE(aspace.walk(cr3, 0x103000).present);
}

TEST(TlbTest, HitMissAndLru)
{
    Tlb tlb(4, 4);  // fully associative, 4 entries
    TlbEntry e;
    e.writable = true;
    for (U64 vpn = 0; vpn < 4; vpn++) {
        e.vpn = vpn;
        e.mfn = 100 + vpn;
        tlb.insert(e);
    }
    ASSERT_NE(tlb.lookup(0), nullptr);
    EXPECT_EQ(tlb.lookup(2)->mfn, 102ULL);
    // Touch 0..2 so 3 becomes LRU; inserting evicts vpn 3.
    tlb.lookup(0);
    tlb.lookup(1);
    tlb.lookup(2);
    e.vpn = 9;
    e.mfn = 109;
    tlb.insert(e);
    EXPECT_EQ(tlb.lookup(3), nullptr);
    EXPECT_NE(tlb.lookup(9), nullptr);
}

TEST(TlbTest, FlushSemantics)
{
    Tlb tlb(8, 2);
    TlbEntry e;
    e.vpn = 5;
    tlb.insert(e);
    tlb.flushVpn(5);
    EXPECT_EQ(tlb.lookup(5), nullptr);
    e.vpn = 6;
    tlb.insert(e);
    tlb.flushAll();
    EXPECT_EQ(tlb.lookup(6), nullptr);
}

TEST(PdeCacheTest, LookupInsertEvict)
{
    PdeCache pde(2);
    EXPECT_EQ(pde.lookup(0x200000), 0ULL);
    pde.insert(0x200000, 0xAAAA000);
    pde.insert(0x400000, 0xBBBB000);
    EXPECT_EQ(pde.lookup(0x200123), 0xAAAA000ULL);  // same 2MB region
    EXPECT_EQ(pde.lookup(0x400000), 0xBBBB000ULL);
    pde.insert(0x600000, 0xCCCC000);                // evicts LRU (0x200000)
    EXPECT_EQ(pde.lookup(0x200000), 0ULL);
    EXPECT_EQ(pde.lookup(0x600000), 0xCCCC000ULL);
}

TEST(CacheArrayTest, HitMissEvictLru)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};  // 32 sets x 2 ways
    CacheArray c(p);
    EXPECT_EQ(c.lookup(0x1000), nullptr);
    c.insert(0x1000, LineState::Exclusive);
    EXPECT_NE(c.lookup(0x1000), nullptr);
    EXPECT_NE(c.lookup(0x103f), nullptr);   // same line
    EXPECT_EQ(c.lookup(0x1040), nullptr);   // next line
    // Two more lines mapping to set of 0x1000 (stride = sets*64 = 2048).
    c.insert(0x1000 + 2048, LineState::Exclusive);
    c.lookup(0x1000);  // make the +2048 line LRU
    CacheArray::Eviction ev;
    c.insert(0x1000 + 4096, LineState::Exclusive, &ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.line_addr, 0x1000ULL + 2048);
    EXPECT_EQ(c.lookup(0x1000 + 2048), nullptr);
    EXPECT_NE(c.lookup(0x1000), nullptr);
}

TEST(CacheArrayTest, BankMapping64BitInterleave)
{
    CacheParams p{64 << 10, 2, 64, 3, 8, 8};
    CacheArray c(p);
    EXPECT_EQ(c.bankOf(0x0), 0);
    EXPECT_EQ(c.bankOf(0x8), 1);
    EXPECT_EQ(c.bankOf(0x38), 7);
    EXPECT_EQ(c.bankOf(0x40), 0);
    EXPECT_EQ(c.bankOf(0x47), 0);  // same 8-byte bank word
}

TEST(CacheArrayTest, InvalidateAndStates)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};
    CacheArray c(p);
    c.insert(0x2000, LineState::Modified);
    EXPECT_TRUE(lineDirty(c.lookup(0x2000)->state));
    c.invalidate(0x2000);
    EXPECT_EQ(c.lookup(0x2000), nullptr);
    c.insert(0x3000, LineState::Shared);
    c.invalidateAll();
    EXPECT_EQ(c.lookup(0x3000), nullptr);
}

TEST(CacheArrayTest, ForEachLineReconstructsAddresses)
{
    CacheParams p{4096, 2, 64, 3, 8, 1};
    CacheArray c(p);
    c.insert(0x12340, LineState::Exclusive);
    c.insert(0x56780, LineState::Modified);
    std::set<U64> addrs;
    c.forEachLine([&](U64 line_addr, const CacheArray::Line &) {
        addrs.insert(line_addr);
    });
    EXPECT_TRUE(addrs.count(0x12340 & ~63ULL));
    EXPECT_TRUE(addrs.count(0x56780 & ~63ULL));
    EXPECT_EQ(addrs.size(), 2u);
}

}  // namespace
}  // namespace ptl
