/**
 * Additional coverage: the interlock controller unit behaviour, basic
 * block cache keying (privilege context, page-crossing instructions),
 * uop disassembly, and command-list error paths.
 */

#include <gtest/gtest.h>

#include "guest_harness.h"
#include "native/triggers.h"

namespace ptl {
namespace {

TEST(Interlock, AcquireReleaseSemantics)
{
    StatsTree stats;
    InterlockController ic(stats);
    EXPECT_TRUE(ic.acquire(GuestPhys(0x1000), 1));
    EXPECT_TRUE(ic.acquire(GuestPhys(0x1000), 1));    // re-acquire by owner
    EXPECT_FALSE(ic.acquire(GuestPhys(0x1004), 2));   // same 8-byte region
    EXPECT_TRUE(ic.heldByOther(GuestPhys(0x1001), 2));
    EXPECT_FALSE(ic.heldByOther(GuestPhys(0x1001), 1));
    EXPECT_TRUE(ic.held(GuestPhys(0x1000)));
    EXPECT_TRUE(ic.acquire(GuestPhys(0x1008), 2));    // neighbouring region is free
    ic.release(GuestPhys(0x1000), 2);                 // wrong owner: no effect
    EXPECT_TRUE(ic.held(GuestPhys(0x1000)));
    ic.release(GuestPhys(0x1000), 1);
    EXPECT_FALSE(ic.held(GuestPhys(0x1000)));
    EXPECT_TRUE(ic.acquire(GuestPhys(0x1000), 2));
    ic.releaseAll(2);
    EXPECT_EQ(ic.heldCount(), 0u);
    EXPECT_GT(stats.get("interlock/contention"), 0ULL);
}

TEST(Interlock, ReleaseAllOnlyDropsOwner)
{
    StatsTree stats;
    InterlockController ic(stats);
    EXPECT_TRUE(ic.acquire(GuestPhys(0x100), 1));
    EXPECT_TRUE(ic.acquire(GuestPhys(0x200), 2));
    ic.releaseAll(1);
    EXPECT_FALSE(ic.held(GuestPhys(0x100)));
    EXPECT_TRUE(ic.held(GuestPhys(0x200)));
}

TEST(UopDisasm, ToStringSmoke)
{
    Uop u;
    u.op = UopOp::Add;
    u.size = 8;
    u.rd = REG_rax;
    u.ra = REG_rax;
    u.rb = REG_rbx;
    u.setflags = SETFLAG_ALL;
    u.som = u.eom = true;
    std::string s = u.toString();
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("rax"), std::string::npos);
    EXPECT_NE(s.find("zaps"), std::string::npos);

    Uop ld;
    ld.op = UopOp::Ld;
    ld.size = 4;
    ld.rd = REG_rcx;
    ld.ra = REG_rsi;
    ld.imm = 16;
    std::string s2 = ld.toString();
    EXPECT_NE(s2.find("ld"), std::string::npos);
    EXPECT_NE(s2.find("[rsi"), std::string::npos);
}

TEST(BbCache, KeyedByPrivilegeContext)
{
    // The same bytes decoded in kernel vs user mode must be distinct
    // cache entries (Section 2.1's contextual keying).
    GuestRunner g;
    Assembler a(GuestRunner::CODE_BASE);
    a.mov(R::rax, 7);
    a.hlt();
    g.load(a);
    GuestFault f;
    ContextCodeSource kcode(g.aspace, g.ctx);
    const BasicBlock *kernel_bb = g.bbcache.get(kcode, &f);
    ASSERT_NE(kernel_bb, nullptr);
    EXPECT_TRUE(kernel_bb->kernel);
    Context uctx = g.ctx;
    uctx.kernel_mode = false;
    ContextCodeSource ucode(g.aspace, uctx);
    const BasicBlock *user_bb = g.bbcache.get(ucode, &f);
    ASSERT_NE(user_bb, nullptr);
    EXPECT_NE(kernel_bb, user_bb);
    EXPECT_FALSE(user_bb->kernel);
    EXPECT_EQ(g.bbcache.size(), 2u);
}

TEST(BbCache, PageCrossingInstructionTracksBothFrames)
{
    GuestRunner g;
    // Place a 10-byte movabs so it straddles a page boundary.
    U64 start = GuestRunner::CODE_BASE + PAGE_SIZE - 4;
    Assembler a(start);
    a.movImm64(R::rax, 0x1122334455667788ULL);  // 10 bytes: crosses
    a.hlt();
    std::vector<U8> image = a.finalize();
    g.writeGuest(start, image.data(), image.size());
    g.ctx.rip = GuestVirt(start);
    GuestFault f;
    ContextCodeSource code(g.aspace, g.ctx);
    const BasicBlock *bb = g.bbcache.get(code, &f);
    ASSERT_NE(bb, nullptr);
    EXPECT_NE(bb->mfn_lo, bb->mfn_hi);  // spans two machine frames
    // Executing it works.
    g.run();
    EXPECT_EQ(g.reg(R::rax), 0x1122334455667788ULL);
    // Writing to the *second* page invalidates the block too.
    U64 before = g.stats.get("bbcache/smc_invalidations");
    g.sys.notifyCodeWrite(bb->mfn_hi);
    EXPECT_GT(g.stats.get("bbcache/smc_invalidations"), before);
}

TEST(CommandList, MalformedInputsAreFatal)
{
    EXPECT_EXIT(parseCommandList("-stopinsns"),
                ::testing::ExitedWithCode(1), "argument");
    EXPECT_EXIT(parseCommandList("-frobnicate"),
                ::testing::ExitedWithCode(1), "unknown directive");
}

TEST(GuestMemory, CrossPageWriteIsAtomicOnFault)
{
    // A store spanning a mapped->unmapped boundary must fault without
    // writing the first fragment.
    GuestRunner g;
    U64 last_page = GuestRunner::DATA_BASE + 255 * PAGE_SIZE;
    U64 va = last_page + PAGE_SIZE - 4;   // next page is unmapped
    U64 before = 0;
    guestRead(g.aspace, g.ctx, GuestVirt(va), 4, before);
    GuestAccess acc =
        guestWrite(g.aspace, g.ctx, GuestVirt(va), 8, 0xAABBCCDDEEFF0011ULL);
    EXPECT_NE(acc.fault, GuestFault::None);
    U64 after = 0;
    guestRead(g.aspace, g.ctx, GuestVirt(va), 4, after);
    EXPECT_EQ(before, after) << "partial write leaked through";
}

TEST(Config, ValidationCatchesBadGeometry)
{
    EXPECT_EXIT(
        {
            SimConfig c = SimConfig::preset("k8");
            c.dtlb_entries = 33;  // not a power of two
            c.validate();
        },
        ::testing::ExitedWithCode(1), "power");
    EXPECT_EXIT(
        {
            SimConfig c = SimConfig::preset("k8");
            c.smt_threads = 17;   // paper's SMT limit is 16
            c.validate();
        },
        ::testing::ExitedWithCode(1), "smt_threads");
}

TEST(Assist, CpuidIsDeterministic)
{
    GuestRunner g1, g2;
    for (GuestRunner *g : {&g1, &g2}) {
        Assembler a(GuestRunner::CODE_BASE);
        a.mov(R::rax, 1);
        a.cpuid();
        a.hlt();
        g->load(a);
        g->run();
    }
    EXPECT_EQ(g1.reg(R::rax), g2.reg(R::rax));
    EXPECT_EQ(g1.reg(R::rdx), g2.reg(R::rdx));
}

}  // namespace
}  // namespace ptl
