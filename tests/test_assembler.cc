/**
 * Tests for the x86-64 subset assembler: encodings are checked against
 * hand-verified byte sequences (as produced by GNU as), and label fixup
 * arithmetic is validated.
 */

#include <gtest/gtest.h>

#include "xasm/assembler.h"

namespace ptl {
namespace {

std::vector<U8>
assemble(void (*body)(Assembler &))
{
    Assembler a(0x400000);
    body(a);
    return a.finalize();
}

void
expectBytes(const std::vector<U8> &got, std::initializer_list<int> want)
{
    std::vector<U8> w;
    for (int b : want)
        w.push_back((U8)b);
    ASSERT_EQ(got.size(), w.size()) << "length mismatch";
    for (size_t i = 0; i < w.size(); i++)
        EXPECT_EQ(got[i], w[i]) << "byte " << i;
}

TEST(Assembler, MovRegReg)
{
    expectBytes(assemble([](Assembler &a) { a.mov(R::rax, R::rbx); }),
                {0x48, 0x89, 0xD8});
    expectBytes(assemble([](Assembler &a) { a.mov(R::r8, R::r15); }),
                {0x4D, 0x89, 0xF8});
}

TEST(Assembler, MovImmForms)
{
    // Small positive: 32-bit zero-extending form.
    expectBytes(assemble([](Assembler &a) { a.mov(R::rax, 1); }),
                {0xB8, 0x01, 0x00, 0x00, 0x00});
    // Negative: sign-extended C7 form.
    expectBytes(assemble([](Assembler &a) { a.mov(R::rax, (U64)-1); }),
                {0x48, 0xC7, 0xC0, 0xFF, 0xFF, 0xFF, 0xFF});
    // Large: movabs.
    expectBytes(
        assemble([](Assembler &a) { a.mov(R::rcx, 0x1122334455667788ULL); }),
        {0x48, 0xB9, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
}

TEST(Assembler, AddImmediateForms)
{
    expectBytes(assemble([](Assembler &a) { a.add(R::r8, 42); }),
                {0x49, 0x83, 0xC0, 0x2A});
    expectBytes(assemble([](Assembler &a) { a.add(R::rax, 1000); }),
                {0x48, 0x81, 0xC0, 0xE8, 0x03, 0x00, 0x00});
    expectBytes(assemble([](Assembler &a) { a.sub(R::rsp, 32); }),
                {0x48, 0x83, 0xEC, 0x20});
}

TEST(Assembler, MemoryOperandForms)
{
    // [rbp + 8] needs mod=01 even for base-only.
    expectBytes(
        assemble([](Assembler &a) { a.mov(Mem::at(R::rbp, 8), R::rcx); }),
        {0x48, 0x89, 0x4D, 0x08});
    // [rax + rcx*4]: SIB form.
    expectBytes(
        assemble([](Assembler &a) {
            a.mov(R::rdx, Mem::idx(R::rax, R::rcx, 4));
        }),
        {0x48, 0x8B, 0x14, 0x88});
    // [rsp + 16]: rsp base forces SIB.
    expectBytes(
        assemble([](Assembler &a) { a.mov(R::rax, Mem::at(R::rsp, 16)); }),
        {0x48, 0x8B, 0x44, 0x24, 0x10});
    // [rbx]: plain base, no displacement.
    expectBytes(
        assemble([](Assembler &a) { a.mov(R::rdi, Mem::at(R::rbx)); }),
        {0x48, 0x8B, 0x3B});
    // [r13]: r13 (like rbp) requires explicit disp.
    expectBytes(
        assemble([](Assembler &a) { a.mov(R::rax, Mem::at(R::r13)); }),
        {0x49, 0x8B, 0x45, 0x00});
    // Large displacement uses disp32.
    expectBytes(
        assemble([](Assembler &a) { a.mov(R::rax, Mem::at(R::rbx, 0x1000)); }),
        {0x48, 0x8B, 0x83, 0x00, 0x10, 0x00, 0x00});
}

TEST(Assembler, ByteAndWordMoves)
{
    expectBytes(assemble([](Assembler &a) { a.mov8(R::rax, Mem::at(R::rsi)); }),
                {0x40, 0x8A, 0x06});
    expectBytes(assemble([](Assembler &a) { a.mov8(Mem::at(R::rdi), R::rdx); }),
                {0x40, 0x88, 0x17});
    expectBytes(
        assemble([](Assembler &a) { a.movzx8(R::rax, Mem::at(R::rsi)); }),
        {0x48, 0x0F, 0xB6, 0x06});
    expectBytes(
        assemble([](Assembler &a) { a.movsx8(R::rcx, Mem::at(R::rdi)); }),
        {0x48, 0x0F, 0xBE, 0x0F});
    expectBytes(
        assemble([](Assembler &a) { a.mov16(Mem::at(R::rbx), R::rax); }),
        {0x66, 0x89, 0x03});
}

TEST(Assembler, PushPopStack)
{
    expectBytes(assemble([](Assembler &a) { a.push(R::rbp); }), {0x55});
    expectBytes(assemble([](Assembler &a) { a.push(R::r12); }), {0x41, 0x54});
    expectBytes(assemble([](Assembler &a) { a.pop(R::rbx); }), {0x5B});
    expectBytes(assemble([](Assembler &a) { a.pop(R::r9); }), {0x41, 0x59});
}

TEST(Assembler, ShiftsAndRotates)
{
    expectBytes(assemble([](Assembler &a) { a.shl(R::rax, 4); }),
                {0x48, 0xC1, 0xE0, 0x04});
    expectBytes(assemble([](Assembler &a) { a.shr(R::rdx, 1); }),
                {0x48, 0xC1, 0xEA, 0x01});
    expectBytes(assemble([](Assembler &a) { a.sar(R::rcx, 63); }),
                {0x48, 0xC1, 0xF9, 0x3F});
    expectBytes(assemble([](Assembler &a) { a.shlCl(R::rbx); }),
                {0x48, 0xD3, 0xE3});
    expectBytes(assemble([](Assembler &a) { a.rol(R::rax, 8); }),
                {0x48, 0xC1, 0xC0, 0x08});
}

TEST(Assembler, MulDivForms)
{
    expectBytes(assemble([](Assembler &a) { a.imul(R::rax, R::rbx); }),
                {0x48, 0x0F, 0xAF, 0xC3});
    expectBytes(assemble([](Assembler &a) { a.imul(R::rax, R::rbx, 10); }),
                {0x48, 0x6B, 0xC3, 0x0A});
    expectBytes(assemble([](Assembler &a) { a.mul(R::rcx); }),
                {0x48, 0xF7, 0xE1});
    expectBytes(assemble([](Assembler &a) { a.div(R::rsi); }),
                {0x48, 0xF7, 0xF6});
    expectBytes(assemble([](Assembler &a) { a.idiv(R::rdi); }),
                {0x48, 0xF7, 0xFF});
}

TEST(Assembler, ControlFlowWithLabels)
{
    Assembler a(0x1000);
    Label top = a.label();
    a.dec(R::rcx);                 // 3 bytes: 48 FF C9
    a.jcc(COND_ne, top);           // 6 bytes: 0F 85 rel32
    auto code = a.finalize();
    ASSERT_EQ(code.size(), 9u);
    // rel32 = target(0) - end_of_jcc(9) = -9.
    EXPECT_EQ(code[3], 0x0F);
    EXPECT_EQ(code[4], 0x85);
    S32 rel;
    memcpy(&rel, &code[5], 4);
    EXPECT_EQ(rel, -9);
}

TEST(Assembler, ForwardLabelAndCall)
{
    Assembler a(0x2000);
    Label fwd = a.newLabel();
    a.call(fwd);                   // 5 bytes
    a.nop();                       // 1 byte
    a.bind(fwd);
    a.ret();
    auto code = a.finalize();
    S32 rel;
    memcpy(&rel, &code[1], 4);
    EXPECT_EQ(rel, 1);             // skip the nop
    EXPECT_EQ(a.labelVa(fwd), 0x2006ULL);
}

TEST(Assembler, UnboundLabelIsFatal)
{
    EXPECT_EXIT(
        {
            Assembler a(0);
            Label l = a.newLabel();
            a.jmp(l);
            a.finalize();
        },
        ::testing::ExitedWithCode(1), "unbound label");
}

TEST(Assembler, AtomicsAndLockPrefix)
{
    expectBytes(
        assemble([](Assembler &a) { a.lockXadd(Mem::at(R::rdi), R::rax); }),
        {0xF0, 0x48, 0x0F, 0xC1, 0x07});
    expectBytes(
        assemble([](Assembler &a) { a.lockCmpxchg(Mem::at(R::rsi), R::rbx); }),
        {0xF0, 0x48, 0x0F, 0xB1, 0x1E});
    expectBytes(
        assemble([](Assembler &a) { a.lockInc(Mem::at(R::rdx)); }),
        {0xF0, 0x48, 0xFF, 0x02});
    expectBytes(assemble([](Assembler &a) { a.xchg(R::rax, Mem::at(R::rbx)); }),
                {0x48, 0x87, 0x03});
}

TEST(Assembler, SystemOpcodes)
{
    expectBytes(assemble([](Assembler &a) { a.syscall(); }), {0x0F, 0x05});
    expectBytes(assemble([](Assembler &a) { a.sysret(); }), {0x0F, 0x07});
    expectBytes(assemble([](Assembler &a) { a.hypercall(); }), {0x0F, 0x34});
    expectBytes(assemble([](Assembler &a) { a.ptlcall(); }), {0x0F, 0x37});
    expectBytes(assemble([](Assembler &a) { a.hlt(); }), {0xF4});
    expectBytes(assemble([](Assembler &a) { a.rdtsc(); }), {0x0F, 0x31});
    expectBytes(assemble([](Assembler &a) { a.iretq(); }), {0x48, 0xCF});
    expectBytes(assemble([](Assembler &a) { a.ud2(); }), {0x0F, 0x0B});
    expectBytes(assemble([](Assembler &a) { a.repMovsb(); }), {0xF3, 0xA4});
    expectBytes(assemble([](Assembler &a) { a.repStosb(); }), {0xF3, 0xAA});
}

TEST(Assembler, SetccEmitsZeroExtension)
{
    // setcc dl ; movzx rdx, dl
    expectBytes(assemble([](Assembler &a) { a.setcc(COND_e, R::rdx); }),
                {0x40, 0x0F, 0x94, 0xC2, 0x48, 0x0F, 0xB6, 0xD2});
}

TEST(Assembler, Cmovcc)
{
    expectBytes(assemble([](Assembler &a) { a.cmovcc(COND_b, R::rax, R::rcx); }),
                {0x48, 0x0F, 0x42, 0xC1});
}

TEST(Assembler, SseScalarDouble)
{
    expectBytes(
        assemble([](Assembler &a) { a.movsd(X::xmm0, Mem::at(R::rax)); }),
        {0xF2, 0x0F, 0x10, 0x00});
    expectBytes(
        assemble([](Assembler &a) { a.movsd(Mem::at(R::rdi), X::xmm1); }),
        {0xF2, 0x0F, 0x11, 0x0F});
    expectBytes(assemble([](Assembler &a) { a.addsd(X::xmm0, X::xmm1); }),
                {0xF2, 0x0F, 0x58, 0xC1});
    expectBytes(assemble([](Assembler &a) { a.comisd(X::xmm2, X::xmm3); }),
                {0x66, 0x0F, 0x2F, 0xD3});
    expectBytes(assemble([](Assembler &a) { a.cvtsi2sd(X::xmm0, R::rax); }),
                {0xF2, 0x48, 0x0F, 0x2A, 0xC0});
    expectBytes(assemble([](Assembler &a) { a.movqXR(X::xmm0, R::rax); }),
                {0x66, 0x48, 0x0F, 0x6E, 0xC0});
}

TEST(Assembler, X87Minimal)
{
    expectBytes(assemble([](Assembler &a) { a.fldQ(Mem::at(R::rax)); }),
                {0xDD, 0x00});
    expectBytes(assemble([](Assembler &a) { a.fstpQ(Mem::at(R::rbx)); }),
                {0xDD, 0x1B});
    expectBytes(assemble([](Assembler &a) { a.faddp(); }), {0xDE, 0xC1});
}

TEST(Assembler, DataDirectivesAndAlignment)
{
    Assembler a(0x3000);
    a.nop();
    a.align(8);
    EXPECT_EQ(a.here() % 8, 0ULL);
    Label l = a.label();
    a.dq(0xdeadbeefULL);
    a.dq(l);
    auto code = a.finalize();
    U64 v;
    memcpy(&v, &code[code.size() - 8], 8);
    EXPECT_EQ(v, a.labelVa(l));
}

TEST(Assembler, IncDecNegNot)
{
    expectBytes(assemble([](Assembler &a) { a.inc(R::rax); }),
                {0x48, 0xFF, 0xC0});
    expectBytes(assemble([](Assembler &a) { a.dec(R::rcx); }),
                {0x48, 0xFF, 0xC9});
    expectBytes(assemble([](Assembler &a) { a.neg(R::rbx); }),
                {0x48, 0xF7, 0xDB});
    expectBytes(assemble([](Assembler &a) { a.not_(R::rdx); }),
                {0x48, 0xF7, 0xD2});
    expectBytes(assemble([](Assembler &a) { a.inc(Mem::at(R::rsi)); }),
                {0x48, 0xFF, 0x06});
}

}  // namespace
}  // namespace ptl
