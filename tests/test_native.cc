/**
 * Native-mode co-simulation tests: mode switching (ptlcall, triggers,
 * command lists), seamless-transition validation, divergence binary
 * search, TSC continuity, and checkpoint / device-trace machinery.
 */

#include <gtest/gtest.h>

#include "kernel/guestkernel.h"
#include "kernel/guestlib.h"
#include "native/cosim.h"
#include "native/triggers.h"
#include "sys/checkpoint.h"

namespace ptl {
namespace {

/** Build a bare-metal deterministic machine (no kernel, no timer)
 *  running `body` and halting. `patch` may alter the image. */
std::unique_ptr<Machine>
bareMachine(void (*body)(Assembler &), U64 patch_va = 0, U8 patch_byte = 0)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.commit_checker = true;
    cfg.guest_mem_bytes = 16 << 20;
    auto m = std::make_unique<Machine>(cfg);
    AddressSpace &as = m->addressSpace();
    Pfn cr3 = as.createRoot();
    as.mapRange(cr3, GuestVirt(0x400000), 64 * PAGE_SIZE,
                Pte::RW | Pte::US);
    as.mapRange(cr3, GuestVirt(0x600000), 64 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);
    as.mapRange(cr3, GuestVirt(0x7F0000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);

    Assembler a(0x400000);
    body(a);
    std::vector<U8> image = a.finalize();
    Context &ctx = m->vcpu(0);
    ctx.cr3 = cr3;
    ctx.kernel_mode = true;
    ctx.rip = GuestVirt(0x400000);
    ctx.regs[REG_rsp] = 0x7FF000;
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc =
            guestTranslate(as, ctx, GuestVirt(0x400000 + i),
                           MemAccess::Write);
        m->physMem().writeBytes(acc.paddr, &image[i], 1);
    }
    if (patch_va) {
        GuestAccess acc =
            guestTranslate(as, ctx, GuestVirt(patch_va), MemAccess::Write);
        m->physMem().writeBytes(acc.paddr, &patch_byte, 1);
    }
    m->finalizeCores();
    return m;
}

void
computeBody(Assembler &a)
{
    a.mov(R::rax, 1);
    a.mov(R::rcx, 400);
    Label top = a.label();
    a.imul(R::rax, R::rax, 6364136223846793005LL & 0x7fffffff);
    a.add(R::rax, 1442695040888963407LL & 0x7fffffff);
    a.movImm64(R::rbx, 0x600000);
    a.mov(Mem::idx(R::rbx, R::rcx, 8), R::rax);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
}

TEST(Native, PureNativeRunMatchesSimulation)
{
    auto sim = bareMachine(computeBody);
    sim->run(10'000'000);
    auto native = bareMachine(computeBody);
    native->setMode(Machine::Mode::Native);
    native->run(10'000'000);
    ContextDiff diff = compareContexts(sim->vcpu(0), native->vcpu(0));
    EXPECT_TRUE(diff.equal) << diff.description;
    EXPECT_EQ(hashGuestMemory(sim->physMem()),
              hashGuestMemory(native->physMem()));
    // Native mode is much faster in simulated wall-clock terms too:
    // it retires ~native_ipc instructions per cycle.
    EXPECT_LT(native->timeKeeper().cycle(), sim->timeKeeper().cycle());
}

TEST(Native, ModeSwitchingIsSeamless)
{
    MachineFactory factory = [] { return bareMachine(computeBody); };
    CosimResult r = validateModeSwitching(
        factory, Machine::Mode::Simulation, /*switch_cycles=*/700);
    EXPECT_TRUE(r.equal) << r.diff;
    EXPECT_GT(r.switches, 3ULL);
}

TEST(Native, ModeSwitchingSeamlessVsNativeReference)
{
    MachineFactory factory = [] { return bareMachine(computeBody); };
    CosimResult r = validateModeSwitching(
        factory, Machine::Mode::Native, /*switch_cycles=*/333);
    EXPECT_TRUE(r.equal) << r.diff;
}

TEST(Native, DivergenceBinarySearchFindsPatchedInstruction)
{
    // Factory B patches the immediate of the 30th loop iteration...
    // simpler: patch the initial "mov rax, 1" immediate to 2; states
    // diverge at the very first instruction.
    MachineFactory fa = [] { return bareMachine(computeBody); };
    MachineFactory fb = [] {
        return bareMachine(computeBody, 0x400001, 0x02);
    };
    U64 diverge = findDivergenceInsn(fa, fb, 512);
    EXPECT_EQ(diverge, 1ULL);

    // Identical factories never diverge.
    EXPECT_EQ(findDivergenceInsn(fa, fa, 256), ~0ULL);
}

TEST(Native, RipTriggerSwitchesToSimulation)
{
    auto m = bareMachine(computeBody);
    m->setMode(Machine::Mode::Native);
    // Trigger at the loop head (runs after the two setup insns).
    m->setRipTrigger(0x400000 + 5 + 5);  // after mov rax / mov rcx
    m->run(5'000'000);
    // Machine finished in simulation mode (trigger fired early on).
    EXPECT_EQ(m->mode(), Machine::Mode::Simulation);
    EXPECT_GT(m->stats().get("external/mode_switches"), 0ULL);
    EXPECT_GT(m->stats().get("core0/commit/insns"), 1000ULL);
}

TEST(Native, CommandListStopInsns)
{
    auto m = bareMachine(computeBody);
    CommandRunner runner(*m);
    runner.run("-run -stopinsns 100");
    U64 insns = m->totalCommittedInsns();
    EXPECT_GE(insns, 100ULL);
    EXPECT_LT(insns, 200ULL);   // bounded promptly
}

TEST(Native, CommandListPhases)
{
    auto m = bareMachine(computeBody);
    CommandRunner runner(*m);
    // Simulate 50 insns, go native for 120 insns, back to sim to finish.
    runner.run("-core ooo -run -stopinsns 50 : -native -stopinsns 120 "
               ": -run");
    EXPECT_GT(m->stats().get("external/mode_switches"), 1ULL);
    EXPECT_GT(m->stats().get("external/cycles_in_mode/native"), 0ULL);
    EXPECT_FALSE(m->vcpu(0).running);  // ran to the hlt
}

TEST(Native, CommandListParsing)
{
    auto phases = parseCommandList(
        "-core smt -run -stopinsns 10m : -native");
    ASSERT_EQ(phases.size(), 2u);
    EXPECT_TRUE(phases[0].to_sim);
    EXPECT_EQ(phases[0].core, "smt");
    EXPECT_EQ(phases[0].stop_insns, 10'000'000ULL);
    EXPECT_TRUE(phases[1].to_native);
    EXPECT_EQ(parseScaledCount("64k"), 64'000ULL);
    EXPECT_EQ(parseScaledCount("2b"), 2'000'000'000ULL);
    EXPECT_EQ(parseScaledCount("123"), 123ULL);
}

TEST(Native, TscIsMonotonicAcrossModeSwitches)
{
    // Guest reads TSC, requests native mode via ptlcall, reads again,
    // requests simulation, reads a third time: strictly increasing.
    auto m = bareMachine([](Assembler &a) {
        a.rdtsc();
        a.shl(R::rdx, 32);
        a.or_(R::rax, R::rdx);
        a.mov(R::r12, R::rax);          // t1
        a.mov(R::rax, (U64)PTLCALL_SWITCH_TO_NATIVE);
        a.ptlcall();
        a.mov(R::rcx, 200);
        Label spin1 = a.label();
        a.dec(R::rcx);
        a.jcc(COND_ne, spin1);
        a.rdtsc();
        a.shl(R::rdx, 32);
        a.or_(R::rax, R::rdx);
        a.mov(R::r13, R::rax);          // t2
        a.mov(R::rax, (U64)PTLCALL_SWITCH_TO_SIM);
        a.ptlcall();
        a.mov(R::rcx, 200);
        Label spin2 = a.label();
        a.dec(R::rcx);
        a.jcc(COND_ne, spin2);
        a.rdtsc();
        a.shl(R::rdx, 32);
        a.or_(R::rax, R::rdx);
        a.mov(R::r14, R::rax);          // t3
        a.hlt();
    });
    m->run(10'000'000);
    U64 t1 = m->vcpu(0).regs[REG_r12];
    U64 t2 = m->vcpu(0).regs[REG_r13];
    U64 t3 = m->vcpu(0).regs[REG_r14];
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, t3);
    EXPECT_GT(m->stats().get("external/mode_switches"), 1ULL);
}

TEST(Native, CheckpointRestoreReproducesRun)
{
    auto m = bareMachine(computeBody);
    // Run a little, checkpoint, finish, record state; restore and
    // finish again: identical end state.
    m->run(500);
    MachineCheckpoint ckpt = captureCheckpoint(*m);
    m->run(10'000'000);
    U64 hash1 = hashGuestMemory(m->physMem());
    Context end1 = m->vcpu(0);

    restoreCheckpoint(*m, ckpt);
    EXPECT_EQ(m->timeKeeper().cycle(), ckpt.cycle);
    m->run(10'000'000);
    EXPECT_EQ(hashGuestMemory(m->physMem()), hash1);
    ContextDiff diff = compareContexts(end1, m->vcpu(0));
    EXPECT_TRUE(diff.equal) << diff.description;
}

TEST(Native, DeviceTraceRecordsDiskDma)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    cfg.core_freq_hz = 10'000'000;
    cfg.guest_mem_bytes = 32 << 20;
    Machine machine(cfg);
    KernelBuilder builder(machine.addressSpace(), machine.vcpu(0),
                          machine.timerPeriodCycles());
    Assembler &ua = builder.userAsm();
    GuestLib lib(ua);
    Label entry = ua.newLabel(), skip = ua.newLabel();
    ua.jmp(skip);
    lib.emitRuntime();
    ua.bind(skip);
    ua.bind(entry);
    ua.mov(R::rdi, 0);
    ua.mov(R::rsi, 2);
    ua.movImm64(R::rdx, USER_DATA_VA);
    lib.syscall(GSYS_disk_read);
    ua.mov(R::rdi, 0);
    lib.syscall(GSYS_exit);
    builder.setInitTask(ua.labelVa(entry), 0);
    builder.build();
    machine.finalizeCores();
    std::vector<U8> image(16 * DISK_SECTOR_BYTES, 0x3C);
    machine.disk().setImage(image);

    DeviceTrace trace;
    machine.recordDevices(&trace);
    machine.run(100'000'000);

    // The DMA completion (payload + interrupt) was recorded.
    bool found = false;
    for (const TraceRecord &r : trace.all()) {
        if (r.port == PORT_DISK && r.dma_va == USER_DATA_VA
            && r.dma_data.size() == 2 * DISK_SECTOR_BYTES
            && r.dma_data[0] == 0x3C)
            found = true;
    }
    EXPECT_TRUE(found);

    // Replay injects the same DMA + event into a fresh domain image.
    Machine replay_machine(cfg);
    KernelBuilder rb(replay_machine.addressSpace(), replay_machine.vcpu(0),
                     replay_machine.timerPeriodCycles());
    rb.userAsm().hlt();
    rb.setInitTask(USER_TEXT_VA, 0);
    rb.build();
    TraceReplayer replayer(trace, replay_machine.eventChannels(),
                           replay_machine.addressSpace());
    // Fix the replayed CR3 context by construction: same builder
    // layout gives the same mappings.
    int injected = replayer.processDue(SimCycle(~0ULL - 1));
    EXPECT_GE(injected, 1);
    Context probe;
    probe.cr3 = rb.taskCr3(0);
    probe.kernel_mode = true;
    U64 v = 0;
    guestRead(replay_machine.addressSpace(), probe, GuestVirt(USER_DATA_VA),
              1, v);
    EXPECT_EQ(v, 0x3CULL);
}

}  // namespace
}  // namespace ptl
