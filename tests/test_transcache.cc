/**
 * @file
 * Tests for the functional-path translation cache (src/mem/transcache.h)
 * and the bulk guest-memory helpers built on it: hit/miss/flush
 * accounting, every edge of the invalidation contract (map/unmap, CR3
 * reload, guest stores landing on page-table frames, SMC interaction
 * with the basic block cache), A/D-bit equivalence with the uncached
 * walker, cross-page store atomicity, and guestCopyIn/Out/Fill partial
 * fault semantics.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "guest_harness.h"
#include "sys/machine.h"

namespace ptl {
namespace {

constexpr U64 DATA_BASE = GuestRunner::DATA_BASE;

TEST(TransCache, HitMissAndFlushCounting)
{
    GuestRunner r;
    TranslationCache &tc = r.aspace.transCache();
    U64 h0 = tc.hits(), m0 = tc.misses();

    // Cold translate: a miss that fills the cache.
    GuestAccess a = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                   MemAccess::Read);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(tc.misses(), m0 + 1);
    EXPECT_EQ(tc.hits(), h0);

    // Warm translate: a hit returning the identical paddr.
    GuestAccess b = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE + 17),
                                   MemAccess::Read);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.paddr, a.paddr + 17);
    EXPECT_EQ(tc.hits(), h0 + 1);
    EXPECT_EQ(tc.misses(), m0 + 1);

    // The stats mirrors track the internal counters.
    EXPECT_EQ(r.stats.get("transcache/hits"), tc.hits());
    EXPECT_EQ(r.stats.get("transcache/misses"), tc.misses());
    EXPECT_EQ(r.stats.get("transcache/flushes"), tc.flushes());
}

TEST(TransCache, MapAndUnmapFlush)
{
    GuestRunner r;
    TranslationCache &tc = r.aspace.transCache();

    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                               MemAccess::Read).ok());
    U64 f0 = tc.flushes();
    Pfn fresh = r.mem.allocFrame();
    r.aspace.map(r.cr3, GuestVirt(0xA00000), fresh, Pte::RW | Pte::US);
    EXPECT_GT(tc.flushes(), f0);

    // After the flush the old line must re-walk (miss), not hit stale.
    U64 m0 = tc.misses();
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                               MemAccess::Read).ok());
    EXPECT_EQ(tc.misses(), m0 + 1);

    U64 f1 = tc.flushes();
    r.aspace.unmap(r.cr3, GuestVirt(0xA00000));
    EXPECT_GT(tc.flushes(), f1);
    GuestAccess gone = guestTranslate(r.aspace, r.ctx, GuestVirt(0xA00000),
                                      MemAccess::Read);
    EXPECT_EQ(gone.fault, GuestFault::PageFaultRead);
}

TEST(TransCache, Cr3TagsKeepRootsDistinct)
{
    GuestRunner r;
    // A second root mapping the same VA to a different frame.
    Pfn cr3b = r.aspace.createRoot();
    Pfn other = r.mem.allocFrame();
    r.aspace.map(cr3b, GuestVirt(DATA_BASE), other, Pte::RW | Pte::US);

    GuestAccess a = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                   MemAccess::Read);
    ASSERT_TRUE(a.ok());

    Context ctx2 = r.ctx;
    ctx2.cr3 = cr3b;
    GuestAccess b = guestTranslate(r.aspace, ctx2, GuestVirt(DATA_BASE),
                                   MemAccess::Read);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.paddr.pfn(), other);
    EXPECT_NE(a.paddr.pfn(), b.paddr.pfn());
}

TEST(TransCache, Cr3SwitchHypercallFlushes)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "seq";
    Machine machine(cfg);
    AddressSpace &as = machine.addressSpace();
    Pfn root = as.createRoot();

    U64 f0 = as.transCache().flushes();
    U64 rc = machine.hypervisor().hypercall(machine.vcpu(0),
                                            HC_new_baseptr, root.raw(), 0, 0);
    EXPECT_EQ(rc, 0ULL);
    EXPECT_EQ(machine.vcpu(0).cr3, root);
    EXPECT_GT(as.transCache().flushes(), f0);
}

/**
 * A guest store that lands on a frame holding live page-table state
 * must invalidate cached translations: rewrite a leaf PTE through an
 * alias mapping and check the very next translate sees the new frame.
 */
TEST(TransCache, StoreToPageTableFrameInvalidates)
{
    GuestRunner r;
    // Warm the cache through the victim mapping so its walk frames are
    // registered for snooping.
    GuestAccess before = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                        MemAccess::Read);
    ASSERT_TRUE(before.ok());

    PageWalk w = r.aspace.walk(r.cr3, GuestVirt(DATA_BASE));
    ASSERT_TRUE(w.present);
    Pfn leaf_frame = w.pte_addr[3].pfn();
    EXPECT_TRUE(r.aspace.isPageTableFrame(leaf_frame));

    // Alias-map the leaf table frame at a scratch VA (PD slot 5 is
    // untouched by the harness mappings), then re-warm the victim.
    constexpr U64 ALIAS = 5ULL << 21;
    r.aspace.map(r.cr3, GuestVirt(ALIAS), leaf_frame, Pte::RW | Pte::US);
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                               MemAccess::Read).ok());

    // Point the victim PTE at a fresh frame via a plain guest store.
    Pfn fresh = r.mem.allocFrame();
    U64 new_pte = (fresh.raw() << PAGE_SHIFT) | Pte::P | Pte::RW | Pte::US;
    U64 f0 = r.aspace.transCache().flushes();
    GuestAccess st = guestWrite(r.aspace, r.ctx,
                                GuestVirt(ALIAS) + w.pte_addr[3].pageOffset(),
                                8, new_pte);
    ASSERT_TRUE(st.ok());
    EXPECT_GT(r.aspace.transCache().flushes(), f0);

    GuestAccess after = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                       MemAccess::Read);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.paddr.pfn(), fresh);
    EXPECT_NE(after.paddr.pfn(), before.paddr.pfn());
}

/**
 * Self-modifying-code discipline: a store into a frame that both backs
 * decoded basic blocks and holds page-table state must invalidate the
 * bbcache (existing SMC snoop) AND the translation cache (new snoop),
 * in the same committed store.
 */
TEST(TransCache, SmcStoreInvalidatesBbcacheAndTransCache)
{
    GuestRunner r;
    // The leaf table for the harness code region: 256 PTEs occupy
    // bytes [0, 2048); the rest of the frame is dead space where a
    // test program can live.
    PageWalk w = r.aspace.walk(r.cr3, GuestVirt(GuestRunner::CODE_BASE));
    ASSERT_TRUE(w.present);
    Pfn leaf_frame = w.pte_addr[3].pfn();

    constexpr U64 ALIAS = 5ULL << 21;
    r.aspace.map(r.cr3, GuestVirt(ALIAS), leaf_frame, Pte::RW | Pte::US);

    // Program at ALIAS+0x900: store to ALIAS+0xE00 (same frame), hlt.
    Assembler a(ALIAS + 0x900);
    a.movImm64(R::rbx, ALIAS + 0xE00);
    a.mov(R::rax, 0x5a);
    a.mov(Mem::at(R::rbx), R::rax);
    a.hlt();
    r.load(a);

    // Register the leaf table frame for snooping: a cached walk of any
    // code-region VA traverses it.
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(GuestRunner::CODE_BASE),
                               MemAccess::Read).ok());
    ASSERT_TRUE(r.aspace.isPageTableFrame(leaf_frame));

    U64 f0 = r.aspace.transCache().flushes();
    U64 smc0 = r.stats.get("bbcache/smc_invalidations");
    r.run();
    EXPECT_GT(r.aspace.transCache().flushes(), f0);
    EXPECT_GT(r.stats.get("bbcache/smc_invalidations"), smc0);
    EXPECT_EQ(r.readGuest(ALIAS + 0xE00, 8), 0x5aULL);
}

TEST(TransCache, CrossPageStoreAtomicityUnchanged)
{
    GuestRunner r;
    // Last mapped data page; the next page (0x700000) is unmapped.
    U64 va = DATA_BASE + 256 * PAGE_SIZE - 4;
    ASSERT_TRUE(guestWrite(r.aspace, r.ctx, GuestVirt(va - 8), 8,
                           0x1111222233334444ULL).ok());

    GuestAccess st = guestWrite(r.aspace, r.ctx, GuestVirt(va), 8,
                                0xdeadbeefcafef00dULL);
    EXPECT_EQ(st.fault, GuestFault::PageFaultWrite);
    // The mapped first half must be untouched (all-or-nothing).
    EXPECT_EQ(r.readGuest(va, 4), 0ULL);

    // Same store twice: the second attempt takes the cached-fault path
    // and must fault identically.
    GuestAccess st2 = guestWrite(r.aspace, r.ctx, GuestVirt(va), 8, 1);
    EXPECT_EQ(st2.fault, GuestFault::PageFaultWrite);
}

/**
 * A/D tracking must be byte-identical to the uncached walker: reads set
 * A on every level but never D; the first write through a clean cached
 * entry re-walks (a miss) so microcode sets D exactly once; later
 * writes hit.
 */
TEST(TransCache, AccessedDirtyBitsMatchUncachedWalk)
{
    GuestRunner r;
    TranslationCache &tc = r.aspace.transCache();
    U64 va = DATA_BASE + 37 * PAGE_SIZE;

    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(va), MemAccess::Read).ok());
    PageWalk w = r.aspace.walk(r.cr3, GuestVirt(va));
    for (int level = 0; level < 4; level++)
        EXPECT_TRUE(r.mem.read(w.pte_addr[level], 8) & Pte::A)
            << "level " << level;
    EXPECT_FALSE(r.mem.read(w.pte_addr[3], 8) & Pte::D);

    // First write through the (clean) cached entry: counted as a miss,
    // walks, and sets D.
    U64 m0 = tc.misses(), h0 = tc.hits();
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(va), MemAccess::Write).ok());
    EXPECT_EQ(tc.misses(), m0 + 1);
    EXPECT_EQ(tc.hits(), h0);
    EXPECT_TRUE(r.mem.read(w.pte_addr[3], 8) & Pte::D);

    // Now the Dirty state is cached: further writes are hits.
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(va), MemAccess::Write).ok());
    EXPECT_EQ(tc.hits(), h0 + 1);
    EXPECT_EQ(tc.misses(), m0 + 1);
}

TEST(TransCache, PermissionFaultsMatchUncachedWalk)
{
    GuestRunner r;
    // The data region is mapped NX: execute must fault, cached or not.
    GuestAccess cold = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                      MemAccess::Execute);
    EXPECT_EQ(cold.fault, GuestFault::PageFaultFetch);
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                               MemAccess::Read).ok());
    GuestAccess warm = guestTranslate(r.aspace, r.ctx, GuestVirt(DATA_BASE),
                                      MemAccess::Execute);
    EXPECT_EQ(warm.fault, GuestFault::PageFaultFetch);

    // User-mode access to a kernel-only page faults from the cache too.
    Pfn kframe = r.mem.allocFrame();
    r.aspace.map(r.cr3, GuestVirt(0xB00000), kframe, Pte::RW);  // no US
    ASSERT_TRUE(guestTranslate(r.aspace, r.ctx, GuestVirt(0xB00000),
                               MemAccess::Read).ok());  // kernel: fine
    Context user = r.ctx;
    user.kernel_mode = false;
    GuestAccess ua = guestTranslate(r.aspace, user, GuestVirt(0xB00000),
                                    MemAccess::Read);
    EXPECT_EQ(ua.fault, GuestFault::PageFaultRead);
}

TEST(TransCache, BulkCopyRoundTripsAcrossPages)
{
    GuestRunner r;
    std::vector<U8> src(3 * PAGE_SIZE + 123);
    for (size_t i = 0; i < src.size(); i++)
        src[i] = (U8)(i * 7 + 3);

    U64 va = DATA_BASE + PAGE_SIZE - 100;  // deliberately misaligned
    GuestCopy out = guestCopyOut(r.aspace, r.ctx, GuestVirt(va), src.data(),
                                 src.size());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.copied, src.size());

    std::vector<U8> back(src.size(), 0);
    GuestCopy in = guestCopyIn(r.aspace, r.ctx, back.data(), GuestVirt(va),
                               back.size());
    ASSERT_TRUE(in.ok());
    EXPECT_EQ(in.copied, back.size());
    EXPECT_EQ(std::memcmp(src.data(), back.data(), src.size()), 0);
    EXPECT_EQ(in.first_paddr,
              guestTranslate(r.aspace, r.ctx, GuestVirt(va), MemAccess::Read).paddr);
}

TEST(TransCache, BulkCopyPartialFaultSemantics)
{
    GuestRunner r;
    // Start two pages before the unmapped hole at 0x700000.
    U64 va = DATA_BASE + 254 * PAGE_SIZE;
    std::vector<U8> buf(3 * PAGE_SIZE, 0xAB);

    GuestCopy out = guestCopyOut(r.aspace, r.ctx, GuestVirt(va), buf.data(),
                                 buf.size());
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.fault, GuestFault::PageFaultWrite);
    EXPECT_EQ(out.copied, 2 * PAGE_SIZE);
    EXPECT_EQ(out.fault_va, GuestVirt(DATA_BASE + 256 * PAGE_SIZE));
    // Everything before the fault was really written.
    EXPECT_EQ(r.readGuest(va + 2 * PAGE_SIZE - 8, 8),
              0xABABABABABABABABULL);

    GuestCopy in = guestCopyIn(r.aspace, r.ctx, buf.data(), GuestVirt(va),
                               buf.size());
    EXPECT_FALSE(in.ok());
    EXPECT_EQ(in.copied, 2 * PAGE_SIZE);
    EXPECT_EQ(in.fault, GuestFault::PageFaultRead);
}

TEST(TransCache, GuestFillWritesAndFaultsLikeCopy)
{
    GuestRunner r;
    U64 va = DATA_BASE + 5 * PAGE_SIZE - 20;
    GuestCopy g = guestFill(r.aspace, r.ctx, GuestVirt(va), 0xCD, PAGE_SIZE + 40);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(g.copied, (size_t)PAGE_SIZE + 40);
    EXPECT_EQ(r.readGuest(va, 1), 0xCDULL);
    EXPECT_EQ(r.readGuest(va + PAGE_SIZE + 39, 1), 0xCDULL);
    EXPECT_EQ(r.readGuest(va + PAGE_SIZE + 40, 1), 0ULL);

    GuestCopy bad = guestFill(r.aspace, r.ctx,
                              GuestVirt(DATA_BASE + 255 * PAGE_SIZE), 0xEE,
                              2 * PAGE_SIZE);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.copied, (size_t)PAGE_SIZE);
}

/** Engine-level sanity: running real guest code populates the cache
 *  and the shadow-walk verifier (PTL_VERIFY builds) stays silent. */
TEST(TransCache, EngineRunProducesHitsUnderShadowVerification)
{
    GuestRunner r;
    ASSERT_TRUE(r.aspace.transCache().shadowEnabled());
    Assembler a(GuestRunner::CODE_BASE);
    a.movImm64(R::rbx, DATA_BASE);
    a.mov(R::rcx, 500);
    Label top = a.label();
    a.mov(Mem::at(R::rbx), R::rcx);
    a.mov(R::rdx, Mem::at(R::rbx));
    a.add(R::rbx, 8);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.run();
    EXPECT_GT(r.aspace.transCache().hits(), 500ULL);
#if PTL_VERIFY
    EXPECT_GT(r.stats.get("transcache/shadow_checks"), 0ULL);
#endif
}

}  // namespace
}  // namespace ptl
