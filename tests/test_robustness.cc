/**
 * Robustness coverage: decoder fuzzing (arbitrary bytes must decode to
 * something executable-or-#UD, never crash the host), guest crash
 * handling through the kernel's fatal-fault path, pipeline debug dump,
 * and a two-VCPU machine with per-core OOO pipelines.
 */

#include <gtest/gtest.h>

#include "core/ooo/ooocore.h"
#include "guest_harness.h"
#include "kernel/guestkernel.h"
#include "kernel/guestlib.h"
#include "lib/rng.h"
#include "sys/machine.h"

namespace ptl {
namespace {

TEST(Fuzz, DecoderNeverCrashesOnRandomBytes)
{
    Rng rng(0xF0CCED);
    for (int i = 0; i < 200'000; i++) {
        U8 bytes[MAX_X86_INSN_BYTES];
        for (U8 &b : bytes)
            b = (U8)rng.next();
        size_t avail = 1 + rng.below(MAX_X86_INSN_BYTES);
        X86Insn d = decodeX86(bytes, avail, 0x1000);
        // Either valid with a sane length, or invalid.
        if (d.valid) {
            ASSERT_GT(d.length, 0);
            ASSERT_LE((size_t)d.length, avail);
        }
    }
}

TEST(Fuzz, TranslatorNeverCrashesOnRandomBytes)
{
    Rng rng(0xBADC0DE);
    for (int i = 0; i < 20'000; i++) {
        U8 bytes[MAX_X86_INSN_BYTES];
        for (U8 &b : bytes)
            b = (U8)rng.next();
        X86Insn d = decodeX86(bytes, sizeof(bytes), 0x2000);
        std::vector<Uop> uops;
        translateOne(d, uops);
        ASSERT_FALSE(uops.empty());
        ASSERT_TRUE(uops.back().eom);
        ASSERT_TRUE(uops.front().som);
        ASSERT_LE(uops.size(), 16u);
    }
}

TEST(Fuzz, RandomCodeExecutionIsContained)
{
    // Execute random bytes as guest code with a fault handler armed:
    // every path must end in a handled fault or run instructions, and
    // must never corrupt the host.
    for (U64 seed = 1; seed <= 20; seed++) {
        GuestRunner g;
        Rng rng(seed * 7919);
        std::vector<U8> junk(256);
        for (U8 &b : junk)
            b = (U8)rng.next();
        Assembler handler_asm(GuestRunner::CODE_BASE + 0x1000);
        handler_asm.hlt();
        std::vector<U8> h = handler_asm.finalize();
        g.writeGuest(GuestRunner::CODE_BASE, junk.data(), junk.size());
        g.writeGuest(GuestRunner::CODE_BASE + 0x1000, h.data(), h.size());
        g.ctx.rip = GuestVirt(GuestRunner::CODE_BASE);
        g.ctx.event_callback = GuestRunner::CODE_BASE + 0x1000;
        g.ctx.kernel_sp = GuestRunner::STACK_TOP - 0x1000;
        int steps = 0;
        while (g.ctx.running && steps < 2000) {
            g.engine->stepInsn(SimCycle((U64)steps));
            steps++;
        }
        // Either it halted via the handler or is still chewing junk;
        // both are fine — the property is no host crash/panic.
        SUCCEED();
    }
}

TEST(Kernel, GuestCrashReportsAndShutsDown)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.core_freq_hz = 10'000'000;
    cfg.guest_mem_bytes = 32 << 20;
    Machine machine(cfg);
    KernelBuilder builder(machine.addressSpace(), machine.vcpu(0),
                          machine.timerPeriodCycles());
    Assembler &ua = builder.userAsm();
    // User program dereferences an unmapped address.
    ua.movImm64(R::rbx, 0xDEAD00000000ULL);
    ua.mov(R::rax, Mem::at(R::rbx));
    ua.hlt();  // never reached
    builder.setInitTask(USER_TEXT_VA, 0);
    builder.build();
    machine.finalizeCores();
    Machine::RunResult r = machine.run(100'000'000);
    EXPECT_TRUE(r.shutdown);
    EXPECT_EQ(r.exit_code, 0xDEADULL);
    EXPECT_NE(machine.console().output().find("KERNEL FAULT"),
              std::string::npos);
}

TEST(OooDebug, DebugStateRendersPipeline)
{
    CoreRunner r([] {
        SimConfig cfg = SimConfig::preset("k8");
        cfg.core = "ooo";
        return cfg;
    }());
    Assembler a(CoreRunner::CODE_BASE);
    a.mov(R::rcx, 100);
    Label top = a.label();
    a.imul(R::rax, R::rcx);
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    r.load(a);
    r.start();
    // Run past the cold I-cache fill so the ROB holds in-flight work.
    std::string dump;
    for (U64 c = 0; c < 2000; c++) {
        r.core->cycle(SimCycle(c));
        if (c > 200) {
            dump = r.core->debugState();
            if (dump.find("rob[") != std::string::npos)
                break;
        }
    }
    EXPECT_NE(dump.find("thread 0"), std::string::npos);
    EXPECT_NE(dump.find("rob["), std::string::npos);
    EXPECT_NE(dump.find("iq[0]"), std::string::npos);
}

TEST(MultiVcpu, TwoCoreMachineRunsBareMetal)
{
    SimConfig cfg = SimConfig::preset("k8");
    cfg.core = "ooo";
    cfg.vcpu_count = 2;
    cfg.coherence = CoherenceKind::Moesi;
    cfg.guest_mem_bytes = 32 << 20;
    Machine m(cfg);
    AddressSpace &as = m.addressSpace();
    Pfn cr3 = as.createRoot();
    as.mapRange(cr3, GuestVirt(0x400000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US);
    as.mapRange(cr3, GuestVirt(0x600000), 16 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);
    as.mapRange(cr3, GuestVirt(0x7E0000), 32 * PAGE_SIZE,
                Pte::RW | Pte::US | Pte::NX);

    Assembler a(0x400000);
    a.movImm64(R::rbx, 0x600000);
    a.mov(R::rcx, 500);
    Label top = a.label();
    a.lockInc(Mem::at(R::rbx));
    a.dec(R::rcx);
    a.jcc(COND_ne, top);
    a.hlt();
    std::vector<U8> image = a.finalize();
    for (int v = 0; v < 2; v++) {
        Context &ctx = m.vcpu(v);
        ctx.cr3 = cr3;
        ctx.kernel_mode = true;
        ctx.rip = GuestVirt(0x400000);
        ctx.regs[REG_rsp] = 0x7FF000 - (U64)v * 0x8000;
    }
    for (size_t i = 0; i < image.size(); i++) {
        GuestAccess acc = guestTranslate(as, m.vcpu(0),
                                         GuestVirt(0x400000 + i),
                                         MemAccess::Write);
        m.physMem().writeBytes(acc.paddr, &image[i], 1);
    }
    m.finalizeCores();
    Machine::RunResult r = m.run(50'000'000);
    EXPECT_TRUE(r.stalled);  // both VCPUs halted
    U64 counter = 0;
    guestRead(as, m.vcpu(0), GuestVirt(0x600000), 8, counter);
    EXPECT_EQ(counter, 1000ULL);
    EXPECT_GT(m.stats().get("coherence/cache_to_cache_transfers"), 0ULL);
}

}  // namespace
}  // namespace ptl
